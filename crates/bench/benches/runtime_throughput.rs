//! runtime_throughput — packets/sec through the sharded traffic engine,
//! plus plans/sec through the service's parallel planner.
//!
//! **Serving section.**  Eight co-resident MLAgg tenants share one ToR
//! device.  With one shard, every packet walks all eight tenants' guarded
//! instruction streams on a single worker; with N shards the tenants (and
//! their state) are partitioned, so each worker scans only its own
//! residents — the architectural win of tenant sharding, on top of thread
//! parallelism on multi-core hosts.
//!
//! **Flow-sharded section.**  One *hot* KVS tenant co-resident with the
//! eight MLAgg tenants is spread across every shard by the stable flow hash
//! of its request key (`ShardingMode::ByFlow`) — the first configuration in
//! which a single tenant scales past one core.  The 1-shard baseline walks
//! every co-resident's snippets for every hot packet; flow-sharding both
//! separates the co-residents and parallelizes the hot tenant itself.  A
//! saturation probe with a deliberately small bounded queue records the
//! drop-tail shed rate under overload.
//!
//! Both sharding sections are pinned to `ExecMode::Interpreted` and install
//! the raw isolated IR (no install-time optimizer) so their speedups measure
//! sharding against the same per-packet cost model as every pre-compiler
//! history row — guard hoisting alone already makes a co-resident scan O(1),
//! which would flatten the very effect these sections track.  The exec-tier
//! section (below) is what measures the compiled pipeline itself:
//! interpreter vs register VM over identical optimized programs.
//!
//! **Adaptive section.**  The same hot KVS tenant starts *pinned* to one
//! shard against deliberately small drop-tail queues; the surge sheds most
//! of its offered load.  One [`AdaptiveController`] step reads the epoch's
//! congestion telemetry and live-reshards the tenant `ByTenant -> ByFlow`,
//! after which the identical surge lands on every shard and the admit ratio
//! recovers.  A static control run (loop off) prices the no-adaptation
//! baseline the recovery is compared against.
//!
//! **Planner section.**  A mixed batch of KVS/MLAgg/CMS requests is solved
//! by `Planner::plan_all` with 1 vs N worker threads (each run against a
//! fresh service, so the plan cache cannot shortcut the measurement), and
//! the per-thread-count plan fingerprints are asserted bit-identical —
//! parallel planning is an optimization, never a semantics change.  Each
//! row also records the per-plan *placement* solve latency (p50/p99 ms),
//! and a second pass over the same batch on a live service prices the plan
//! cache: every member of the re-plan must answer from cache, bit-identical
//! to the first pass.
//!
//! **Warm-start / churn section.**  The incremental-placement showcase:
//! dry-run plans over the churn scenario's shape pool price the segment
//! memo (warm, the default) against the unmemoized cold DP (memo disabled)
//! — co-tenant programs reusing a template pool are exactly the access
//! pattern the memo is built for, and the warm-over-cold median-latency
//! quotient is the gated number.  Then the full arrival/departure churn
//! scenario runs against the serving engine: a capped resident set, the
//! retry queue admitting refused arrivals on departures' auto-drains, and
//! per-admission end-to-end latency percentiles.
//!
//! Results are *appended* to the history in `BENCH_runtime.json` so the
//! repo's performance trajectory accumulates across PRs.  Environment
//! knobs (for the CI bench-trend step):
//!
//! * `RUNTIME_BENCH_SMOKE=1` — reduced configuration (fewer rounds, 1 vs 4
//!   shards/threads only) suitable for a CI smoke run;
//! * `RUNTIME_BENCH_MIN_SPEEDUP=<x>` — exit non-zero if the best N-shard
//!   throughput (tenant-sharded *or* flow-sharded) regresses below `x`× its
//!   1-shard baseline;
//! * `RUNTIME_BENCH_MIN_ADAPT_RECOVERY=<x>` — exit non-zero if the adaptive
//!   loop's post-reshard admit ratio falls below `x`× the static control's
//!   (same traffic, loop off).  The post-phase ratios are compared
//!   absolutely: the surge-phase denominator is noisy near zero under
//!   drop-tail (admits depend on how much the workers drain mid-burst), so
//!   it is reported but never gated;
//! * `RUNTIME_BENCH_MIN_FAILOVER_RECOVERY=<x>` — exit non-zero if the
//!   failover scenario's post-restore admit ratio falls below `x`× its
//!   pre-fault baseline (backpressure admission makes both phases exact).
//!   The co-resident blast-radius invariant — bystander stats and store
//!   fingerprints bit-identical to a fault-free control — is asserted
//!   unconditionally, like the planner's determinism;
//! * `RUNTIME_BENCH_MIN_PLANNER_SPEEDUP=<x>` — exit non-zero if the warm
//!   (memoized) placement solve falls below `x`× the cold unmemoized DP at
//!   the median over the churn shape pool.

use clickinc::{BatchStats, ClickIncService, ServiceRequest};
use clickinc_apps::churn::{run_churn_scenario, ChurnConfig};
use clickinc_apps::failover::{serve_failover_scenario, FailoverServingConfig};
use clickinc_device::DeviceModel;
use clickinc_frontend::compile_source;
use clickinc_ir::Value;
use clickinc_ir::{DiagnosticSet, Optimizer};
use clickinc_lang::templates::{
    count_min_sketch, kvs_template, mlagg_template, KvsParams, MlAggParams,
};
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MixedWorkload, MlAggWorkload, MlAggWorkloadConfig, Workload,
};
use clickinc_runtime::{
    AdaptAction, AdaptiveController, AdaptivePolicy, EngineConfig, ExecMode, OverloadPolicy,
    ShardingMode, TenantHop, TrafficEngine, WorkloadReport,
};
use clickinc_synthesis::isolate_user_program;
use clickinc_topology::Topology;
use serde::{Deserialize, Serialize};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

const TENANTS: usize = 8;
const WORKERS: usize = 4;
const DIMS: u32 = 16;
const HISTORY_CAP: usize = 100;

#[derive(Serialize, Deserialize)]
struct ShardResult {
    shards: usize,
    elapsed_ms: f64,
    packets_per_sec: f64,
}

#[derive(Serialize, Deserialize)]
struct ExecResult {
    mode: String,
    shards: usize,
    elapsed_ms: f64,
    packets_per_sec: f64,
}

#[derive(Serialize, Deserialize)]
struct PlannerResult {
    threads: usize,
    elapsed_ms: f64,
    plans_per_sec: f64,
    /// Per-plan placement solve latency over the batch (absent in
    /// pre-warm-start history rows).
    #[serde(default)]
    solve_p50_ms: f64,
    #[serde(default)]
    solve_p99_ms: f64,
}

/// One bench invocation: a row of the accumulated history.
#[derive(Serialize, Deserialize)]
struct RunEntry {
    #[serde(default)]
    unix_time_s: u64,
    #[serde(default)]
    smoke: bool,
    tenants: usize,
    packets: usize,
    results: Vec<ShardResult>,
    speedup_best_vs_one_shard: f64,
    /// Planner-throughput section (absent in pre-planner history rows).
    #[serde(default)]
    planner: Vec<PlannerResult>,
    #[serde(default)]
    planner_speedup_best_vs_one_thread: f64,
    /// Flow-sharded hot-tenant section (absent in pre-flow-sharding rows).
    #[serde(default)]
    flow: Vec<ShardResult>,
    #[serde(default)]
    flow_speedup_best_vs_one_shard: f64,
    /// Shards the hot tenant utilized in the best flow-sharded run.
    #[serde(default)]
    flow_shards_utilized: usize,
    /// Drop-tail shed fraction in the bounded-queue saturation probe.
    #[serde(default)]
    overload_drop_rate: f64,
    /// Compiled-vs-interpreted execution-tier section (absent in pre-VM
    /// history rows).
    #[serde(default)]
    exec: Vec<ExecResult>,
    #[serde(default)]
    compile_speedup_vs_interp: f64,
    /// Adaptive-runtime section (absent in pre-adaptive history rows):
    /// the loop-on post-reshard admit ratio over the loop-off one.
    #[serde(default)]
    adapt_recovery: f64,
    /// Post-phase admit ratios behind the recovery quotient.
    #[serde(default)]
    adapt_post_admit: f64,
    #[serde(default)]
    adapt_static_post_admit: f64,
    /// Failover section (absent in pre-failover history rows): the victim's
    /// post-restore admits over its pre-fault admits.
    #[serde(default)]
    failover_recovery: f64,
    /// Packets the victim lost at the dead device in the fault window.
    #[serde(default)]
    failover_fault_lost: u64,
    /// Whether the failover re-placed the victim immediately (vs parking it
    /// `Degraded` until the restore).
    #[serde(default)]
    failover_recovered_immediately: bool,
    /// Plan-cache counters from re-planning the planner batch on a live
    /// service (second pass over the same epoch: every member must hit).
    #[serde(default)]
    planner_batch: BatchStats,
    /// Warm-start section (absent in pre-warm-start history rows): median
    /// per-plan placement solve with the segment memo on vs off, and their
    /// quotient — the gated incremental-placement speedup.
    #[serde(default)]
    placement_warm_p50_ms: f64,
    #[serde(default)]
    placement_cold_p50_ms: f64,
    #[serde(default)]
    placement_warm_speedup: f64,
    /// Churn section: the arrival/departure scenario against the engine.
    #[serde(default)]
    churn_tenants: usize,
    #[serde(default)]
    churn_admit_p50_ms: f64,
    #[serde(default)]
    churn_admit_p99_ms: f64,
    #[serde(default)]
    churn_admitted_from_queue: usize,
    #[serde(default)]
    churn_solve_cache_hit_ratio: f64,
    #[serde(default)]
    churn_packets_served: u64,
}

#[derive(Serialize, Deserialize)]
struct BenchHistory {
    bench: String,
    history: Vec<RunEntry>,
}

fn tenant_hops(name: &str, id: i64, optimized: bool) -> Vec<TenantHop> {
    let t = mlagg_template(
        name,
        MlAggParams {
            dims: DIMS,
            num_workers: WORKERS as u32,
            num_aggregators: 4096,
            ..Default::default()
        },
    );
    let ir = compile_source(name, &t.source).expect("template compiles");
    let isolated = isolate_user_program(&ir, name, id);
    let snippet = if optimized { optimize(name, isolated) } else { isolated };
    vec![TenantHop {
        device: "tor0".to_string(),
        model: DeviceModel::tofino(),
        snippets: vec![snippet],
    }]
}

/// The controller's install-time optimization (constant folding, dead-value
/// elimination, guard hoisting).  The exec-tier section installs optimized
/// IR (the same IR a deploy installs); the sharding sections install the raw
/// isolated IR — guard hoisting turns a non-matching co-resident scan into a
/// single precondition check, which is exactly the per-packet cost those
/// sections' history rows priced in, so optimizing there would benchmark the
/// optimizer instead of the sharding machinery.
fn optimize(name: &str, isolated: clickinc_ir::IrProgram) -> clickinc_ir::IrProgram {
    let mut diags = DiagnosticSet::new();
    Optimizer::with_default_passes().optimize(name, true, &isolated, &mut diags)
}

fn run_once(shards: usize, rounds: usize, mode: ExecMode, optimized: bool) -> (f64, usize) {
    let engine = TrafficEngine::new(EngineConfig {
        shards,
        batch_size: 256,
        exec_mode: mode,
        ..Default::default()
    });
    let handle = engine.handle();
    let mut parts: Vec<Box<dyn Workload>> = Vec::new();
    for i in 0..TENANTS {
        let name = format!("tenant{i}");
        let id = i as i64 + 1;
        handle.add_tenant(&name, tenant_hops(&name, id, optimized));
        parts.push(Box::new(MlAggWorkload::new(MlAggWorkloadConfig {
            tenant: name,
            user_id: id,
            workers: WORKERS,
            rounds,
            dims: DIMS as usize,
            sparsity: 0.5,
            block_size: 8,
            rate_pps: 100_000_000.0,
            seed: 42 + i as u64,
        })));
    }
    let mut mixed = MixedWorkload::new(parts);

    let start = Instant::now();
    let report = handle.run_workload(&mut mixed, usize::MAX, 256);
    handle.flush();
    let elapsed = start.elapsed().as_secs_f64();
    let outcome = engine.finish();
    let completed: u64 = outcome.telemetry.tenants.values().map(|t| t.completed).sum();
    assert_eq!(report.shed, 0, "ample default queues shed nothing");
    assert_eq!(completed as usize, report.admitted, "every admitted packet completes");
    (elapsed, report.admitted)
}

/// The flow-sharded hot tenant's hop list: an isolated KVS cache program on
/// the shared ToR.
fn hot_kvs_hops(name: &str, id: i64) -> Vec<TenantHop> {
    let t = kvs_template(name, KvsParams { cache_depth: 4096, ..Default::default() });
    let ir = compile_source(name, &t.source).expect("template compiles");
    vec![TenantHop {
        device: "tor0".to_string(),
        model: DeviceModel::tofino(),
        snippets: vec![isolate_user_program(&ir, name, id)],
    }]
}

/// One hot KVS tenant, flow-sharded by its request key, co-resident with
/// the eight `ByTenant` MLAgg tenants (installed but idle — they cost every
/// hot packet a snippet scan wherever they share a shard).  Returns the
/// elapsed seconds, the packets served, and how many shards the hot tenant
/// utilized.
fn run_flow_once(shards: usize, requests: usize) -> (f64, usize, usize) {
    // interpreter-pinned and unoptimized for the same reason as the serving
    // section: the flow-sharding speedup is measured against the pre-compiler
    // cost model so the BENCH_runtime.json history stays comparable across
    // PRs (see the module docs).
    let engine = TrafficEngine::new(EngineConfig {
        shards,
        batch_size: 256,
        exec_mode: ExecMode::Interpreted,
        ..Default::default()
    });
    let handle = engine.handle();
    for i in 0..TENANTS {
        let name = format!("tenant{i}");
        handle.add_tenant(&name, tenant_hops(&name, i as i64 + 1, false));
    }
    handle.add_tenant_sharded(
        "hot",
        hot_kvs_hops("hot", 100),
        ShardingMode::ByFlow { key_fields: vec!["key".to_string()] },
    );
    for key in 0..256 {
        handle.populate_table(
            "hot",
            "tor0",
            "hot_cache",
            vec![Value::Int(key)],
            vec![Value::Int(key * 1000 + 7)],
        );
    }
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "hot".to_string(),
        user_id: 100,
        keys: 4096,
        skew: 1.1,
        requests,
        rate_pps: 100_000_000.0,
        seed: 99,
    });
    let start = Instant::now();
    let report = handle.run_workload(&mut wl, usize::MAX, 256);
    handle.flush();
    let elapsed = start.elapsed().as_secs_f64();
    let outcome = engine.finish();
    let hot = outcome.telemetry.tenant("hot").expect("hot tenant served");
    assert_eq!(report.shed, 0, "ample default queues shed nothing");
    assert_eq!(hot.completed as usize, report.admitted, "every admitted packet completes");
    let utilized = hot.per_shard_packets.iter().filter(|&&p| p > 0).count();
    (elapsed, report.admitted, utilized)
}

/// Saturation probe: the same hot tenant against a deliberately small
/// bounded queue under drop-tail.  Returns the shed fraction.
fn run_overload_probe(shards: usize, requests: usize) -> f64 {
    let engine = TrafficEngine::new(EngineConfig {
        shards,
        batch_size: 256,
        queue_capacity: 512,
        overload: OverloadPolicy::DropTail,
        exec_mode: ExecMode::Interpreted,
    });
    let handle = engine.handle();
    handle.add_tenant_sharded(
        "hot",
        hot_kvs_hops("hot", 100),
        ShardingMode::ByFlow { key_fields: vec!["key".to_string()] },
    );
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "hot".to_string(),
        user_id: 100,
        keys: 4096,
        skew: 1.1,
        requests,
        rate_pps: 100_000_000.0,
        seed: 99,
    });
    let report = handle.run_workload(&mut wl, usize::MAX, 2048);
    handle.flush();
    engine.finish();
    report.shed as f64 / report.generated.max(1) as f64
}

/// Adaptive probe: the hot tenant starts pinned (`ByTenant`) against small
/// drop-tail queues, surges, and — when `adapt` — a single
/// [`AdaptiveController`] step reads the congestion telemetry and
/// live-reshards it `ByTenant -> ByFlow` before the second half of the
/// surge.  Returns the surge-epoch and post-epoch admit ratios.
fn run_adapt_probe(shards: usize, requests: usize, adapt: bool) -> (f64, f64) {
    let engine = TrafficEngine::new(EngineConfig {
        shards,
        batch_size: 64,
        queue_capacity: 96,
        overload: OverloadPolicy::DropTail,
        exec_mode: ExecMode::Interpreted,
    });
    let handle = engine.handle();
    handle.add_tenant_sharded("hot", hot_kvs_hops("hot", 100), ShardingMode::ByTenant);
    let mut controller =
        AdaptiveController::new(AdaptivePolicy { min_epoch_packets: 256, ..Default::default() });
    controller.track(
        "hot",
        ShardingMode::ByTenant,
        ShardingMode::ByFlow { key_fields: vec!["key".to_string()] },
    );
    let mut wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: "hot".to_string(),
        user_id: 100,
        keys: 4096,
        skew: 1.1,
        requests,
        rate_pps: 100_000_000.0,
        seed: 99,
    });
    if adapt {
        controller.step(&handle); // baseline epoch: stash the telemetry snapshot
    }
    let surge = handle.run_workload(&mut wl, requests / 2, 2048);
    handle.flush();
    if adapt {
        let tick = controller.step(&handle);
        assert!(
            tick.applied.iter().any(|a| matches!(a, AdaptAction::Reshard { .. })),
            "the surge epoch's congestion telemetry must trigger a reshard, got {:?}",
            tick.applied
        );
    }
    let adapted = handle.run_workload(&mut wl, usize::MAX, 2048);
    handle.flush();
    engine.finish();
    let ratio = |r: &WorkloadReport| r.admitted as f64 / r.generated.max(1) as f64;
    (ratio(&surge), ratio(&adapted))
}

/// The mixed request batch the planner section solves: KVS, MLAgg and CMS
/// tenants with distinct sources, like a provider's arrival queue.
fn planner_requests(count: usize) -> Vec<ServiceRequest> {
    (0..count)
        .map(|i| {
            let user = format!("plan{i}");
            let builder = ServiceRequest::builder(&user);
            let builder = match i % 3 {
                0 => builder
                    .template(kvs_template(
                        &user,
                        KvsParams { cache_depth: 1000 + 100 * i as u32, ..Default::default() },
                    ))
                    .from_("pod0a"),
                1 => builder
                    .template(mlagg_template(
                        &user,
                        MlAggParams { dims: DIMS, num_aggregators: 512, ..Default::default() },
                    ))
                    .from_("pod1a"),
                _ => builder.template(count_min_sketch(&user, 3, 512)).from_("pod0b"),
            };
            builder.to("pod2b").build().expect("well-formed request")
        })
        .collect()
}

/// Solve the batch with `threads` planner workers against a fresh service
/// (a fresh service per run keeps the plan cache from shortcutting the
/// measurement).  Returns the elapsed seconds, the plan fingerprints in
/// request order (for the cross-thread-count bit-identity assertion), and
/// each plan's placement solve latency in milliseconds.
fn plan_once(requests: &[ServiceRequest], threads: usize) -> (f64, Vec<u64>, Vec<f64>) {
    let service = ClickIncService::new(Topology::emulation_topology_all_tofino())
        .expect("default engine config is valid");
    let planner = service.planner().with_threads(threads);
    let start = Instant::now();
    let plans = planner.plan_all(requests);
    let elapsed = start.elapsed().as_secs_f64();
    let mut fingerprints = Vec::with_capacity(plans.len());
    let mut solve_ms = Vec::with_capacity(plans.len());
    for plan in plans {
        let plan = plan.expect("every request solves");
        fingerprints.push(plan.fingerprint());
        solve_ms.push(plan.placement().solve_time.as_secs_f64() * 1e3);
    }
    service.finish();
    (elapsed, fingerprints, solve_ms)
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One request from the churn scenario's shape pool: co-tenant programs
/// reusing a handful of templates under fresh user names — the access
/// pattern the segment memo is built for (same canonical shape, different
/// tenant).
fn pooled_request(i: usize) -> ServiceRequest {
    const POOL: usize = 6;
    let slot = i % POOL;
    let user = format!("warm{i}");
    let builder = ServiceRequest::builder(&user);
    let builder = match slot % 3 {
        0 => builder
            .template(kvs_template(
                &user,
                KvsParams { cache_depth: 1000 + 500 * (slot as u32 / 3), ..Default::default() },
            ))
            .from_("pod0a"),
        1 => builder
            .template(mlagg_template(
                &user,
                MlAggParams {
                    dims: DIMS + 8 * (slot as u32 / 3),
                    num_aggregators: 512,
                    ..Default::default()
                },
            ))
            .from_("pod1a"),
        _ => builder.template(count_min_sketch(&user, 3, 512 << (slot / 3))).from_("pod0b"),
    };
    builder.to("pod2b").build().expect("well-formed request")
}

/// Per-plan placement solve latencies (ms, ascending) for `count` dry-run
/// plans over the churn shape pool on one live service.  `warm` keeps the
/// segment memo on (the deploy default); cold disables it, pricing the
/// pre-memo DP the warm-start gate is measured against.
fn solve_latencies(count: usize, warm: bool) -> Vec<f64> {
    let service = ClickIncService::new(Topology::emulation_topology_all_tofino())
        .expect("default engine config is valid");
    if !warm {
        service.controller().set_solve_memo(false);
    }
    let mut ms: Vec<f64> = (0..count)
        .map(|i| {
            let plan = service.plan(&pooled_request(i)).expect("every pooled request solves");
            plan.placement().solve_time.as_secs_f64() * 1e3
        })
        .collect();
    service.finish();
    ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    ms
}

/// Load the accumulated history, migrating a pre-history single-report file
/// into its first entry and backfilling wall-clock timestamps the earliest
/// rows were written without (the file's mtime is the best bound we have for
/// them; new rows are stamped at append time).
fn load_history(path: &str) -> BenchHistory {
    let empty = || BenchHistory { bench: "runtime_throughput".to_string(), history: Vec::new() };
    let Ok(text) = std::fs::read_to_string(path) else { return empty() };
    let mut history = if let Ok(history) = serde_json::from_str::<BenchHistory>(&text) {
        history
    } else {
        // legacy layout: the file was one report, not a history
        match serde_json::from_str::<RunEntry>(&text) {
            Ok(entry) => {
                BenchHistory { bench: "runtime_throughput".to_string(), history: vec![entry] }
            }
            Err(_) => return empty(),
        }
    };
    let mtime_s = std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
        .map(|d| d.as_secs())
        .unwrap_or(0);
    for entry in &mut history.history {
        if entry.unix_time_s == 0 {
            entry.unix_time_s = mtime_s;
        }
    }
    history
}

fn main() {
    let smoke = std::env::var("RUNTIME_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty());
    let (rounds, shard_counts): (usize, &[usize]) =
        if smoke { (400, &[1, 4]) } else { (1500, &[1, 2, 4, 8]) };

    println!(
        "== runtime_throughput: {TENANTS} co-resident MLAgg tenants, 1 vs N shards{} ==",
        if smoke { " (smoke)" } else { "" }
    );
    println!("{:>8} {:>12} {:>16}", "shards", "elapsed", "packets/sec");
    let mut results = Vec::new();
    for &shards in shard_counts {
        // best of two runs to shave scheduler noise; interpreter-pinned and
        // unoptimized per the cost-model note in the module docs
        let (mut elapsed, mut packets) = run_once(shards, rounds, ExecMode::Interpreted, false);
        let (e2, p2) = run_once(shards, rounds, ExecMode::Interpreted, false);
        if e2 < elapsed {
            elapsed = e2;
            packets = p2;
        }
        let pps = packets as f64 / elapsed.max(1e-9);
        println!("{shards:>8} {:>10.1}ms {pps:>16.0}", elapsed * 1e3);
        results.push(ShardResult { shards, elapsed_ms: elapsed * 1e3, packets_per_sec: pps });
    }

    let one = results[0].packets_per_sec;
    let best = results.iter().map(|r| r.packets_per_sec).fold(0.0f64, f64::max);
    let speedup = best / one.max(1e-9);
    println!(
        "best N-shard throughput is {speedup:.2}x the 1-shard baseline ({})",
        if speedup > 1.0 { "sharding wins" } else { "REGRESSION" }
    );

    // ---- compiled-vs-interpreted execution-tier section -----------------
    // the same workload, same shard count, same optimized IR — the only
    // difference is the execution tier the shard workers select.  One shard
    // keeps scheduler noise out of the per-packet cost comparison.
    let exec_shards = shard_counts.first().copied().unwrap_or(1);
    println!(
        "\n== exec_tier: interpreter vs register VM, {TENANTS} MLAgg tenants on {exec_shards} \
         shards =="
    );
    println!("{:>12} {:>12} {:>16}", "mode", "elapsed", "packets/sec");
    let mut exec_results = Vec::new();
    for (label, mode) in [("interpreted", ExecMode::Interpreted), ("compiled", ExecMode::Compiled)]
    {
        // best of three runs to shave scheduler noise: the tier comparison
        // feeds a CI gate, so its minima need to be tighter than the
        // scaling sections'
        let (mut elapsed, mut packets) = run_once(exec_shards, rounds, mode, true);
        for _ in 0..2 {
            let (e2, p2) = run_once(exec_shards, rounds, mode, true);
            if e2 < elapsed {
                elapsed = e2;
                packets = p2;
            }
        }
        let pps = packets as f64 / elapsed.max(1e-9);
        println!("{label:>12} {:>10.1}ms {pps:>16.0}", elapsed * 1e3);
        exec_results.push(ExecResult {
            mode: label.to_string(),
            shards: exec_shards,
            elapsed_ms: elapsed * 1e3,
            packets_per_sec: pps,
        });
    }
    let interp_pps = exec_results[0].packets_per_sec;
    let compiled_pps = exec_results[1].packets_per_sec;
    let compile_speedup = compiled_pps / interp_pps.max(1e-9);
    println!(
        "compiled tier is {compile_speedup:.2}x the interpreter on the same shard count ({})",
        if compile_speedup > 1.0 { "compilation wins" } else { "REGRESSION" }
    );

    // ---- flow-sharded hot-tenant section --------------------------------
    let flow_requests = if smoke { 20_000 } else { 60_000 };
    println!(
        "\n== flow_throughput: 1 hot flow-sharded KVS tenant next to {TENANTS} MLAgg tenants, \
         1 vs N shards =="
    );
    println!("{:>8} {:>12} {:>16} {:>10}", "shards", "elapsed", "packets/sec", "utilized");
    let mut flow_results = Vec::new();
    let mut flow_shards_utilized = 0usize;
    for &shards in shard_counts {
        // best of two runs to shave scheduler noise
        let (mut elapsed, mut packets, mut utilized) = run_flow_once(shards, flow_requests);
        let (e2, p2, u2) = run_flow_once(shards, flow_requests);
        if e2 < elapsed {
            (elapsed, packets, utilized) = (e2, p2, u2);
        }
        assert!(
            shards == 1 || utilized > 1,
            "a flow-sharded hot tenant must utilize more than one of {shards} shards"
        );
        let pps = packets as f64 / elapsed.max(1e-9);
        println!("{shards:>8} {:>10.1}ms {pps:>16.0} {utilized:>10}", elapsed * 1e3);
        flow_results.push(ShardResult { shards, elapsed_ms: elapsed * 1e3, packets_per_sec: pps });
        flow_shards_utilized = flow_shards_utilized.max(utilized);
    }
    let flow_one = flow_results[0].packets_per_sec;
    let flow_best = flow_results.iter().map(|r| r.packets_per_sec).fold(0.0f64, f64::max);
    let flow_speedup = flow_best / flow_one.max(1e-9);
    println!(
        "best N-shard hot-tenant throughput is {flow_speedup:.2}x the 1-shard baseline ({})",
        if flow_speedup > 1.0 { "flow sharding wins" } else { "REGRESSION" }
    );
    let overload_drop_rate =
        run_overload_probe(shard_counts.last().copied().unwrap_or(4), flow_requests / 4);
    println!(
        "saturation probe (512-deep bounded queues, drop-tail): {:.1}% shed",
        overload_drop_rate * 100.0
    );

    // ---- adaptive-runtime section ---------------------------------------
    // the hot tenant starts pinned to one shard against 96-deep drop-tail
    // queues; one controller step after the surge epoch reads the shed /
    // high-water telemetry and live-reshards it across every shard
    let adapt_shards = shard_counts.last().copied().unwrap_or(4);
    let adapt_requests = flow_requests / 4;
    println!(
        "\n== adaptive: pinned hot KVS vs 96-deep drop-tail queues on {adapt_shards} shards, \
         loop on vs off =="
    );
    let (surge_ratio, adapt_post_admit) = run_adapt_probe(adapt_shards, adapt_requests, true);
    let (static_surge, adapt_static_post_admit) =
        run_adapt_probe(adapt_shards, adapt_requests, false);
    // recovery compares the post-phase admit ratios absolutely (loop on over
    // loop off, identical traffic) — the surge-phase ratios are printed for
    // context but carry drain-timing noise near zero, so nothing gates on
    // them
    let adapt_recovery = adapt_post_admit / adapt_static_post_admit.max(1e-9);
    println!("{:>8} {:>14} {:>14}", "loop", "surge admit", "post admit");
    println!("{:>8} {surge_ratio:>14.3} {adapt_post_admit:>14.3}", "on");
    println!("{:>8} {static_surge:>14.3} {adapt_static_post_admit:>14.3}", "off");
    println!(
        "adaptive reshard recovers {adapt_recovery:.2}x the static control's post-surge admit \
         ratio ({})",
        if adapt_recovery > 1.0 { "adaptation wins" } else { "REGRESSION" }
    );

    // ---- failover section ------------------------------------------------
    // the apps failover scenario end-to-end: a victim device dies on the
    // virtual clock mid-run, the controller quiesces and re-places the
    // victim around it, the restore revives it — priced against a fault-free
    // control run that also proves the blast radius
    let failover_config = FailoverServingConfig {
        requests_per_phase: if smoke { 1024 } else { 4096 },
        background_rounds: if smoke { 60 } else { 120 },
        ..Default::default()
    };
    println!(
        "\n== failover: victim KVS loses a device mid-run, {} requests/phase, fault vs \
         fault-free ==",
        failover_config.requests_per_phase
    );
    let faulted = serve_failover_scenario(&failover_config).expect("failover scenario serves");
    let clean =
        serve_failover_scenario(&FailoverServingConfig { fail: false, ..failover_config.clone() })
            .expect("fault-free control serves");
    assert_eq!(faulted.bystander, clean.bystander, "co-resident stats diverged under the fault");
    assert_eq!(
        faulted.bystander_fingerprints(),
        clean.bystander_fingerprints(),
        "co-resident store fingerprints diverged under the fault"
    );
    let failover_recovery = faulted.recovery_ratio();
    let failover_fault_lost = faulted.victim.fault_lost_packets;
    let failover_recovered_immediately = faulted.recovered_immediately;
    println!(
        "device `{}` lost {failover_fault_lost} victim packets; failover re-placed \
         immediately: {failover_recovered_immediately}",
        faulted.failed_device.as_deref().unwrap_or("?")
    );
    println!(
        "post-restore recovery is {failover_recovery:.2}x the pre-fault baseline ({}); \
         co-resident bit-identical to the fault-free control",
        if failover_recovery >= 1.0 { "service restored" } else { "REGRESSION" }
    );

    // ---- planner-throughput section -------------------------------------
    let (batch, thread_counts): (usize, &[usize]) =
        if smoke { (8, &[1, 4]) } else { (16, &[1, 2, 4, 8]) };
    let requests = planner_requests(batch);
    println!(
        "\n== planner_throughput: {batch} mixed KVS/MLAgg/CMS requests, 1 vs N solver threads =="
    );
    println!(
        "{:>8} {:>12} {:>16} {:>12} {:>12}",
        "threads", "elapsed", "plans/sec", "solve p50", "solve p99"
    );
    let mut planner_results = Vec::new();
    let mut baseline_fingerprints: Option<Vec<u64>> = None;
    for &threads in thread_counts {
        // best of two runs to shave scheduler noise
        let (mut elapsed, fingerprints, mut solve_ms) = plan_once(&requests, threads);
        let (e2, f2, s2) = plan_once(&requests, threads);
        assert_eq!(fingerprints, f2, "planning is deterministic");
        if e2 < elapsed {
            elapsed = e2;
            solve_ms = s2;
        }
        match &baseline_fingerprints {
            None => baseline_fingerprints = Some(fingerprints),
            Some(baseline) => assert_eq!(
                baseline, &fingerprints,
                "parallel solves are bit-identical to the 1-thread path"
            ),
        }
        solve_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let solve_p50_ms = percentile(&solve_ms, 0.50);
        let solve_p99_ms = percentile(&solve_ms, 0.99);
        let pps = batch as f64 / elapsed.max(1e-9);
        println!(
            "{threads:>8} {:>10.1}ms {pps:>16.1} {:>10.3}ms {:>10.3}ms",
            elapsed * 1e3,
            solve_p50_ms,
            solve_p99_ms
        );
        planner_results.push(PlannerResult {
            threads,
            elapsed_ms: elapsed * 1e3,
            plans_per_sec: pps,
            solve_p50_ms,
            solve_p99_ms,
        });
    }
    let planner_one = planner_results[0].plans_per_sec;
    let planner_best = planner_results.iter().map(|r| r.plans_per_sec).fold(0.0f64, f64::max);
    let planner_speedup = planner_best / planner_one.max(1e-9);
    println!(
        "best N-thread solve throughput is {planner_speedup:.2}x the 1-thread baseline \
         (bit-identical plans at every thread count)"
    );

    // plan-cache counters: the same batch twice on one live service — the
    // first pass runs placement for every member (fresh cache), the second
    // pass must answer every member from the plan cache, bit-identical
    let cache_service = ClickIncService::new(Topology::emulation_topology_all_tofino())
        .expect("default engine config is valid");
    let cache_planner = cache_service.planner();
    let (first_plans, first_stats) = cache_planner.plan_all_with_stats(&requests);
    let (second_plans, planner_batch) = cache_planner.plan_all_with_stats(&requests);
    let fp = |plans: Vec<Result<clickinc::DeploymentPlan, _>>| -> Vec<u64> {
        plans.into_iter().map(|p| p.expect("every request solves").fingerprint()).collect()
    };
    assert_eq!(fp(first_plans), fp(second_plans), "a cached re-plan is bit-identical");
    assert_eq!(first_stats.cache_misses as usize, batch, "a fresh cache misses on every member");
    assert_eq!(
        planner_batch.cache_hits as usize, batch,
        "a same-epoch re-plan hits on every member"
    );
    cache_service.finish();
    println!(
        "plan cache: first pass {} misses, re-plan {} hits / {} misses (bit-identical)",
        first_stats.cache_misses, planner_batch.cache_hits, planner_batch.cache_misses
    );

    // ---- warm-start / churn section --------------------------------------
    // dry-run plans over the churn shape pool: segment memo on (the deploy
    // default) vs off (the unmemoized DP every solve paid before the memo)
    let probe_count = if smoke { 36 } else { 60 };
    println!(
        "\n== warm_start: per-plan placement solve over the churn shape pool, memo on vs off, \
         {probe_count} plans =="
    );
    let warm_lat = solve_latencies(probe_count, true);
    let cold_lat = solve_latencies(probe_count, false);
    let placement_warm_p50_ms = percentile(&warm_lat, 0.50);
    let placement_cold_p50_ms = percentile(&cold_lat, 0.50);
    let placement_warm_speedup = placement_cold_p50_ms / placement_warm_p50_ms.max(1e-9);
    println!(
        "warm p50 {placement_warm_p50_ms:.4} ms | cold p50 {placement_cold_p50_ms:.4} ms | \
         memoized solve is {placement_warm_speedup:.2}x the cold DP ({})",
        if placement_warm_speedup > 1.0 { "warm start wins" } else { "REGRESSION" }
    );

    // smoke shrinks the arrival count; serve_every shrinks with it so the
    // direct-admission stream (a fraction of arrivals once the house fills)
    // still triggers serving bursts
    let churn_config = ChurnConfig {
        tenants: if smoke { 150 } else { 1000 },
        serve_every: if smoke { 10 } else { 50 },
        burst_requests: if smoke { 256 } else { 512 },
        ..Default::default()
    };
    println!(
        "\n== churn: {} arrivals over a {}-resident cap, retry queue against the serving \
         engine ==",
        churn_config.tenants, churn_config.resident_cap
    );
    let churn_start = Instant::now();
    let churn = run_churn_scenario(&churn_config).expect("churn scenario runs");
    let churn_wall = churn_start.elapsed().as_secs_f64();
    assert_eq!(churn.failed, 0, "every churn arrival must place");
    assert!(churn.admitted_from_queue > 0, "the retry queue must admit waiters");
    assert!(churn.packets_served > 0, "the engine must serve during the churn");
    println!(
        "admitted {} directly + {} from the retry queue; {} departures; admission p50 \
         {:.3} ms p99 {:.3} ms; memo hit ratio {:.1}%; {} packets served; {churn_wall:.2}s \
         wall-clock",
        churn.admitted_directly,
        churn.admitted_from_queue,
        churn.departures,
        churn.admit_p50_ms,
        churn.admit_p99_ms,
        churn.solve_cache_hit_ratio * 100.0,
        churn.packets_served
    );

    // append to the accumulated history at the workspace root
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json");
    let mut report = load_history(path);
    report.history.push(RunEntry {
        unix_time_s: SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0),
        smoke,
        tenants: TENANTS,
        packets: TENANTS * rounds * WORKERS,
        results,
        speedup_best_vs_one_shard: speedup,
        planner: planner_results,
        planner_speedup_best_vs_one_thread: planner_speedup,
        flow: flow_results,
        flow_speedup_best_vs_one_shard: flow_speedup,
        flow_shards_utilized,
        overload_drop_rate,
        exec: exec_results,
        compile_speedup_vs_interp: compile_speedup,
        adapt_recovery,
        adapt_post_admit,
        adapt_static_post_admit,
        failover_recovery,
        failover_fault_lost,
        failover_recovered_immediately,
        planner_batch,
        placement_warm_p50_ms,
        placement_cold_p50_ms,
        placement_warm_speedup,
        churn_tenants: churn_config.tenants,
        churn_admit_p50_ms: churn.admit_p50_ms,
        churn_admit_p99_ms: churn.admit_p99_ms,
        churn_admitted_from_queue: churn.admitted_from_queue,
        churn_solve_cache_hit_ratio: churn.solve_cache_hit_ratio,
        churn_packets_served: churn.packets_served,
    });
    if report.history.len() > HISTORY_CAP {
        let drop = report.history.len() - HISTORY_CAP;
        report.history.drain(..drop);
    }
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(path, &json).expect("BENCH_runtime.json written");
    println!("appended run #{} to BENCH_runtime.json", report.history.len());

    // optional regression gate for the CI bench-trend step: both the
    // tenant-sharded and the flow-sharded multi-shard configurations must
    // beat their 1-shard baselines
    if let Ok(min) = std::env::var("RUNTIME_BENCH_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("RUNTIME_BENCH_MIN_SPEEDUP is a number");
        if speedup < min {
            eprintln!(
                "FAIL: speedup_best_vs_one_shard {speedup:.2} regressed below the {min:.2}x gate"
            );
            std::process::exit(1);
        }
        if flow_speedup < min {
            eprintln!(
                "FAIL: flow_speedup_best_vs_one_shard {flow_speedup:.2} regressed below the \
                 {min:.2}x gate"
            );
            std::process::exit(1);
        }
        println!(
            "bench-trend gate passed: tenant-sharded {speedup:.2}x, flow-sharded \
             {flow_speedup:.2}x >= {min:.2}x"
        );
    }
    // regression gate for the compiled execution tier: the register VM must
    // stay ahead of the interpreter on the same shard count
    if let Ok(min) = std::env::var("RUNTIME_BENCH_MIN_COMPILE_SPEEDUP") {
        let min: f64 = min.parse().expect("RUNTIME_BENCH_MIN_COMPILE_SPEEDUP is a number");
        if compile_speedup < min {
            eprintln!(
                "FAIL: compile_speedup_vs_interp {compile_speedup:.2} regressed below the \
                 {min:.2}x gate"
            );
            std::process::exit(1);
        }
        println!("exec-tier gate passed: compiled {compile_speedup:.2}x >= {min:.2}x interpreter");
    }
    // regression gate for the adaptive loop: the loop-on post-reshard admit
    // ratio must stay `min`x above the loop-off control's
    if let Ok(min) = std::env::var("RUNTIME_BENCH_MIN_ADAPT_RECOVERY") {
        let min: f64 = min.parse().expect("RUNTIME_BENCH_MIN_ADAPT_RECOVERY is a number");
        if adapt_recovery < min {
            eprintln!(
                "FAIL: adapt_recovery {adapt_recovery:.2} regressed below the {min:.2}x gate \
                 (post-surge admit {adapt_post_admit:.3} vs static {adapt_static_post_admit:.3})"
            );
            std::process::exit(1);
        }
        println!(
            "adaptive gate passed: recovery {adapt_recovery:.2}x >= {min:.2}x the static \
             control's post-surge admit ratio"
        );
    }
    // regression gate for the failover path: the re-placed victim must serve
    // its post-restore phase at `min`x its pre-fault baseline
    if let Ok(min) = std::env::var("RUNTIME_BENCH_MIN_FAILOVER_RECOVERY") {
        let min: f64 = min.parse().expect("RUNTIME_BENCH_MIN_FAILOVER_RECOVERY is a number");
        if failover_recovery < min {
            eprintln!(
                "FAIL: failover_recovery {failover_recovery:.2} regressed below the {min:.2}x \
                 gate ({failover_fault_lost} packets lost in the fault window)"
            );
            std::process::exit(1);
        }
        println!(
            "failover gate passed: recovery {failover_recovery:.2}x >= {min:.2}x the pre-fault \
             baseline"
        );
    }
    // regression gate for the placement memo: a warm (memoized) solve over
    // the churn shape pool must stay `min`x faster than the cold unmemoized
    // DP at the median
    if let Ok(min) = std::env::var("RUNTIME_BENCH_MIN_PLANNER_SPEEDUP") {
        let min: f64 = min.parse().expect("RUNTIME_BENCH_MIN_PLANNER_SPEEDUP is a number");
        if placement_warm_speedup < min {
            eprintln!(
                "FAIL: placement_warm_speedup {placement_warm_speedup:.2} regressed below the \
                 {min:.2}x gate (warm p50 {placement_warm_p50_ms:.4} ms vs cold p50 \
                 {placement_cold_p50_ms:.4} ms)"
            );
            std::process::exit(1);
        }
        println!(
            "warm-start gate passed: memoized solve {placement_warm_speedup:.2}x >= {min:.2}x \
             the cold DP at the median"
        );
    }
}
