//! The verifier pass pipeline.
//!
//! A [`PassManager`] runs an ordered list of [`VerifierPass`]es over a
//! [`PassContext`] (one tenant's programs plus, when available, their per-device
//! placements) and collects every finding into a [`DiagnosticSet`].  The service
//! runs the default pipeline before the first mutation of any deploy, and CI
//! re-runs it in deny-warnings mode over every example's programs.
//!
//! The manager is deliberately open: passes are trait objects registered in
//! order, so optimizer passes (dead-snippet *elimination*, guard hoisting,
//! cross-tenant table merging) can mount on the same pipeline later without a
//! new driver.

use crate::analysis::dataflow::{header_reads, header_writes, is_effectful, DefUse};
use crate::analysis::diagnostics::{Diagnostic, DiagnosticSet, Severity};
use crate::analysis::taint::state_profile;
use crate::capability::CapabilityClass;
use crate::instr::{OpCode, Operand};
use crate::object::ObjectKind;
use crate::program::IrProgram;
use std::collections::BTreeSet;

/// A device the verifier checks placements against, as plain data.
///
/// The `device` crate owns the full models; the service flattens them into this
/// shape so the IR crate needs no device dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceTarget {
    /// Device name (e.g. `tor0`).
    pub device: String,
    /// Device kind label (e.g. `tofino`), used only in messages.
    pub kind: String,
    /// Capability classes the device supports.
    pub supported: BTreeSet<CapabilityClass>,
    /// Total storage the device offers, in bits.
    pub storage_capacity_bits: u64,
}

/// One per-device slice of a tenant's deployment.
#[derive(Debug, Clone)]
pub struct PlacedSnippet {
    /// The device the slice lands on.
    pub device: String,
    /// The device's verifier-visible model.
    pub target: DeviceTarget,
    /// The instructions placed there.
    pub program: IrProgram,
}

/// Everything a pass may inspect for one tenant.
#[derive(Debug, Clone)]
pub struct PassContext<'a> {
    /// The tenant (user program id) under analysis.
    pub tenant: String,
    /// Whether `programs` went through isolation renaming — the isolation pass
    /// only applies then (operator base programs own the global namespace).
    pub isolated: bool,
    /// The tenant's full programs, one per source snippet.
    pub programs: &'a [IrProgram],
    /// Per-device placement slices, when placement has run (may be empty).
    pub placements: &'a [PlacedSnippet],
}

/// A single verifier pass.
pub trait VerifierPass {
    /// Stable pass name, recorded on every diagnostic it emits.
    fn name(&self) -> &'static str;
    /// Analyze `ctx`, appending findings to `out`.
    fn run(&self, ctx: &PassContext<'_>, out: &mut DiagnosticSet);
}

/// Runs an ordered pipeline of verifier passes.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn VerifierPass>>,
}

impl PassManager {
    /// An empty manager (register passes yourself).
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// The default verifier pipeline, in severity-first order.
    pub fn with_default_passes() -> PassManager {
        let mut pm = PassManager::new();
        pm.register(Box::new(IsolationPass));
        pm.register(Box::new(UninitHeaderPass));
        pm.register(Box::new(BoundsPass));
        pm.register(Box::new(ResourceBoundPass));
        pm.register(Box::new(DeadSnippetPass));
        pm.register(Box::new(CommutativityPass));
        pm
    }

    /// Append a pass to the pipeline.
    pub fn register(&mut self, pass: Box<dyn VerifierPass>) {
        self.passes.push(pass);
    }

    /// The registered pass names, in run order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run every pass over `ctx` and collect the findings.
    pub fn run(&self, ctx: &PassContext<'_>) -> DiagnosticSet {
        let mut out = DiagnosticSet::new();
        for pass in &self.passes {
            pass.run(ctx, &mut out);
        }
        out
    }
}

fn diag(
    severity: Severity,
    pass: &str,
    ctx: &PassContext<'_>,
    snippet: &str,
    message: String,
) -> Diagnostic {
    Diagnostic::new(severity, pass, ctx.tenant.clone(), snippet, message)
}

/// Cross-tenant isolation: every object an isolated program declares or
/// touches must live inside the tenant's isolation-renamed namespace
/// (`{tenant}_` prefix, the contract `synthesis::isolate_user_program`
/// establishes).  A reference outside it reads or corrupts another tenant's
/// state.
pub struct IsolationPass;

impl IsolationPass {
    fn is_owned(name: &str, tenant: &str) -> bool {
        name.len() > tenant.len() + 1
            && name.as_bytes()[tenant.len()] == b'_'
            && name.starts_with(tenant)
    }
}

impl VerifierPass for IsolationPass {
    fn name(&self) -> &'static str {
        "isolation"
    }

    fn run(&self, ctx: &PassContext<'_>, out: &mut DiagnosticSet) {
        if !ctx.isolated {
            return;
        }
        for program in ctx.programs {
            for decl in &program.objects {
                if !Self::is_owned(&decl.name, &ctx.tenant) {
                    out.push(diag(
                        Severity::Error,
                        self.name(),
                        ctx,
                        &program.name,
                        format!(
                            "object `{}` is declared outside tenant namespace `{}_*`",
                            decl.name, ctx.tenant
                        ),
                    ));
                }
            }
            for instr in &program.instructions {
                if let Some(object) = instr.object() {
                    if !Self::is_owned(object, &ctx.tenant) {
                        out.push(diag(
                            Severity::Error,
                            self.name(),
                            ctx,
                            &program.name,
                            format!(
                                "instruction {} accesses `{object}` outside tenant namespace `{}_*`",
                                instr.id, ctx.tenant
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Uninitialized-header-read: a header field read before the program either
/// declares it (parsed off the wire) or writes it yields whatever bytes the
/// previous pipeline stage left behind.
pub struct UninitHeaderPass;

impl VerifierPass for UninitHeaderPass {
    fn name(&self) -> &'static str {
        "uninit-header"
    }

    fn run(&self, ctx: &PassContext<'_>, out: &mut DiagnosticSet) {
        for program in ctx.programs {
            let mut known: BTreeSet<String> =
                program.headers.iter().map(|h| h.name.clone()).collect();
            for instr in &program.instructions {
                for field in header_reads(instr) {
                    if !known.contains(&field) {
                        out.push(diag(
                            Severity::Error,
                            self.name(),
                            ctx,
                            &program.name,
                            format!(
                                "instruction {} reads header field `{field}` that is neither \
                                 declared nor written earlier",
                                instr.id
                            ),
                        ));
                    }
                }
                known.extend(header_writes(instr));
            }
        }
    }
}

/// Constant-index bounds: the emulator (and the ASICs' register files) wrap
/// out-of-range indices modulo the object size, so an out-of-bounds constant
/// silently aliases another cell instead of faulting.  Negative constants are
/// folded through `unsigned_abs` and alias too.  Only `Array` and `Seq`
/// objects have indexed cells; sketches hash their index and tables treat it
/// as a key.
pub struct BoundsPass;

impl BoundsPass {
    fn const_int(op: &Operand) -> Option<i64> {
        match op {
            Operand::Const(v) => v.as_int(),
            _ => None,
        }
    }

    fn check(
        &self,
        ctx: &PassContext<'_>,
        out: &mut DiagnosticSet,
        program: &IrProgram,
        instr: &crate::instr::Instruction,
        object: &str,
        index: &[Operand],
    ) {
        let Some(decl) = program.object(object) else { return };
        // (bound, what) pairs checked against the constants actually used as
        // that dimension by the emulator's row/cell decoding
        let mut checks: Vec<(i64, u64, &str)> = Vec::new();
        match &decl.kind {
            ObjectKind::Array { rows, size, .. } => {
                if index.len() >= 2 {
                    if let Some(row) = Self::const_int(&index[0]) {
                        checks.push((row, u64::from(*rows), "row"));
                    }
                    if let Some(cell) = Self::const_int(&index[1]) {
                        checks.push((cell, u64::from(*size), "cell"));
                    }
                } else if let Some(cell) = index.first().and_then(Self::const_int) {
                    checks.push((cell, u64::from(*size), "cell"));
                }
            }
            ObjectKind::Seq { size, .. } => {
                if let Some(cell) = index.first().and_then(Self::const_int) {
                    checks.push((cell, u64::from(*size), "cell"));
                }
            }
            _ => return,
        }
        for (value, bound, what) in checks {
            if value < 0 {
                out.push(diag(
                    Severity::Error,
                    self.name(),
                    ctx,
                    &program.name,
                    format!(
                        "instruction {} indexes `{object}` with negative {what} {value}, which \
                         aliases {what} {} at runtime",
                        instr.id,
                        value.unsigned_abs() % bound.max(1)
                    ),
                ));
            } else if value as u64 >= bound {
                out.push(diag(
                    Severity::Error,
                    self.name(),
                    ctx,
                    &program.name,
                    format!(
                        "instruction {} indexes `{object}` at {what} {value}, past its {what} \
                         bound {bound} (wraps to {} at runtime)",
                        instr.id,
                        value as u64 % bound.max(1)
                    ),
                ));
            }
        }
    }
}

impl VerifierPass for BoundsPass {
    fn name(&self) -> &'static str {
        "bounds"
    }

    fn run(&self, ctx: &PassContext<'_>, out: &mut DiagnosticSet) {
        for program in ctx.programs {
            for instr in &program.instructions {
                match &instr.op {
                    OpCode::ReadState { object, index, .. }
                    | OpCode::WriteState { object, index, .. }
                    | OpCode::CountState { object, index, .. }
                    | OpCode::DeleteState { object, index } => {
                        self.check(ctx, out, program, instr, object, index);
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Resource pre-check against the device models placement chose: a placed
/// slice demanding a capability class its device lacks can never install
/// (error), and one whose objects outgrow the device's total storage will be
/// rejected by the device compiler later (warning — placement may still be
/// revised).
pub struct ResourceBoundPass;

impl VerifierPass for ResourceBoundPass {
    fn name(&self) -> &'static str {
        "resource-bound"
    }

    fn run(&self, ctx: &PassContext<'_>, out: &mut DiagnosticSet) {
        for placed in ctx.placements {
            let required = placed.program.required_capabilities();
            let missing: Vec<String> =
                required.difference(&placed.target.supported).map(|c| c.to_string()).collect();
            if !missing.is_empty() {
                out.push(diag(
                    Severity::Error,
                    self.name(),
                    ctx,
                    &placed.program.name,
                    format!(
                        "device `{}` ({}) lacks capability class(es) {} required by the slice",
                        placed.device,
                        placed.target.kind,
                        missing.join(", ")
                    ),
                ));
            }
            let demand: u64 = placed.program.objects.iter().map(|o| o.kind.storage_bits()).sum();
            if demand > placed.target.storage_capacity_bits {
                out.push(diag(
                    Severity::Warning,
                    self.name(),
                    ctx,
                    &placed.program.name,
                    format!(
                        "slice declares {demand} bits of state but device `{}` ({}) offers only \
                         {} bits in total",
                        placed.device, placed.target.kind, placed.target.storage_capacity_bits
                    ),
                ));
            }
        }
    }
}

/// Dead-snippet detection: a program with no effectful instruction (no state
/// mutation, header rewrite, or packet action beyond the default forward)
/// burns pipeline stages without observable output — warning.  Individual
/// pure computations whose values never reach an effect are reported as info
/// (the elimination pass that will remove them mounts on this pipeline next).
pub struct DeadSnippetPass;

impl VerifierPass for DeadSnippetPass {
    fn name(&self) -> &'static str {
        "dead-snippet"
    }

    fn run(&self, ctx: &PassContext<'_>, out: &mut DiagnosticSet) {
        for program in ctx.programs {
            if !program.instructions.iter().any(is_effectful) {
                out.push(diag(
                    Severity::Warning,
                    self.name(),
                    ctx,
                    &program.name,
                    "snippet has no observable effect: no state mutation, header rewrite, or \
                     non-default packet action"
                        .to_string(),
                ));
                continue;
            }
            let du = DefUse::of(program);
            let live = du.live_instructions(program);
            for (idx, instr) in program.instructions.iter().enumerate() {
                if !live[idx] {
                    out.push(diag(
                        Severity::Info,
                        self.name(),
                        ctx,
                        &program.name,
                        format!(
                            "instruction {} ({}) computes a value nothing observes",
                            instr.id,
                            instr.op.mnemonic()
                        ),
                    ));
                }
            }
        }
    }
}

/// Non-commutative-mutation classification: surfaces (as info) every state
/// mutation with no order-free merge, straight from the shared taint engine's
/// [`state_profile`] — the same analysis the runtime uses to decide the
/// tenant's sharding mode, so the verifier and the flow-sharder can never
/// disagree about which mutations pin a tenant.
pub struct CommutativityPass;

impl VerifierPass for CommutativityPass {
    fn name(&self) -> &'static str {
        "commutativity"
    }

    fn run(&self, ctx: &PassContext<'_>, out: &mut DiagnosticSet) {
        let programs: Vec<&IrProgram> = ctx.programs.iter().collect();
        let profile = state_profile(&programs);
        for m in profile.non_commutative_mutations() {
            let target = m.object.as_deref().unwrap_or("the tenant random stream");
            out.push(diag(
                Severity::Info,
                self.name(),
                ctx,
                &m.snippet,
                format!(
                    "instruction i{} performs a non-commutative `{}` mutation of {target}; the \
                     deployment cannot be flow-sharded",
                    m.instr,
                    m.kind.name()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::ValueType;

    fn ctx<'a>(programs: &'a [IrProgram], placements: &'a [PlacedSnippet]) -> PassContext<'a> {
        PassContext { tenant: "u0".into(), isolated: true, programs, placements }
    }

    #[test]
    fn default_pipeline_order_is_stable() {
        let pm = PassManager::with_default_passes();
        assert_eq!(
            pm.pass_names(),
            vec![
                "isolation",
                "uninit-header",
                "bounds",
                "resource-bound",
                "dead-snippet",
                "commutativity"
            ]
        );
    }

    #[test]
    fn isolation_pass_flags_foreign_objects_only_when_isolated() {
        let mut b = ProgramBuilder::new("p");
        b.header("key", ValueType::Bit(32));
        b.array("u1_ctr", 1, 8, 32); // another tenant's namespace
        b.count(None, "u1_ctr", vec![Operand::hdr("key")], Operand::int(1));
        let p = [b.build().unwrap()];
        let set = PassManager::with_default_passes().run(&ctx(&p, &[]));
        let isolation: Vec<_> = set.iter().filter(|d| d.pass == "isolation").collect();
        assert_eq!(isolation.len(), 2, "declaration and access both flagged: {set}");
        assert!(set.has_errors());

        let mut unisolated = ctx(&p, &[]);
        unisolated.isolated = false;
        let set = PassManager::with_default_passes().run(&unisolated);
        assert_eq!(set.iter().filter(|d| d.pass == "isolation").count(), 0);
    }

    #[test]
    fn uninit_header_read_is_an_error_and_writes_initialize() {
        let mut b = ProgramBuilder::new("p");
        b.array("u0_a", 1, 8, 32);
        b.count(None, "u0_a", vec![Operand::hdr("key")], Operand::int(1)); // key undeclared
        b.set_header("op", Operand::int(1));
        b.assign("x", Operand::hdr("op")); // initialized by the write above
        let p = [b.build().unwrap()];
        let set = PassManager::with_default_passes().run(&ctx(&p, &[]));
        let uninit: Vec<_> = set.iter().filter(|d| d.pass == "uninit-header").collect();
        assert_eq!(uninit.len(), 1);
        assert!(uninit[0].message.contains("`key`"));
    }

    #[test]
    fn constant_index_bounds_cover_rows_cells_and_negatives() {
        let mut b = ProgramBuilder::new("p");
        b.header("key", ValueType::Bit(32));
        b.array("u0_a", 2, 8, 32);
        b.seq("u0_s", 4, 8);
        b.count(None, "u0_a", vec![Operand::int(1), Operand::int(7)], Operand::int(1)); // ok
        b.count(None, "u0_a", vec![Operand::int(2), Operand::int(0)], Operand::int(1)); // row oob
        b.get("v", "u0_a", vec![Operand::int(8)]); // cell oob
        b.write("u0_s", vec![Operand::int(-1)], vec![Operand::int(0)]); // negative
        b.forward();
        let p = [b.build().unwrap()];
        let set = PassManager::with_default_passes().run(&ctx(&p, &[]));
        let bounds: Vec<_> = set.iter().filter(|d| d.pass == "bounds").collect();
        assert_eq!(bounds.len(), 3, "{set}");
        assert!(bounds.iter().all(|d| d.severity == Severity::Error));
        assert!(bounds[0].message.contains("row"));
        assert!(bounds[2].message.contains("negative"));
    }

    #[test]
    fn dead_snippet_is_a_warning_dead_value_is_info() {
        let mut b = ProgramBuilder::new("noop");
        b.header("key", ValueType::Bit(32));
        b.assign("x", Operand::hdr("key"));
        b.forward();
        let p = [b.build().unwrap()];
        let set = PassManager::with_default_passes().run(&ctx(&p, &[]));
        let dead: Vec<_> = set.iter().filter(|d| d.pass == "dead-snippet").collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].severity, Severity::Warning);

        let mut b = ProgramBuilder::new("p");
        b.header("key", ValueType::Bit(32));
        b.array("u0_a", 1, 8, 32);
        b.assign("unused", Operand::hdr("key"));
        b.count(None, "u0_a", vec![Operand::hdr("key")], Operand::int(1));
        let p = [b.build().unwrap()];
        let set = PassManager::with_default_passes().run(&ctx(&p, &[]));
        let dead: Vec<_> = set.iter().filter(|d| d.pass == "dead-snippet").collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].severity, Severity::Info);
    }

    #[test]
    fn resource_pass_checks_capabilities_and_capacity() {
        let mut b = ProgramBuilder::new("p");
        b.header("key", ValueType::Bit(32));
        b.array("u0_a", 1, 1024, 32);
        b.count(None, "u0_a", vec![Operand::hdr("key")], Operand::int(1));
        let program = b.build().unwrap();
        let starved = DeviceTarget {
            device: "tor0".into(),
            kind: "toy".into(),
            supported: BTreeSet::from([CapabilityClass::Bin]), // no BSO
            storage_capacity_bits: 1024,                       // < 32768 demanded
        };
        let placements =
            [PlacedSnippet { device: "tor0".into(), target: starved, program: program.clone() }];
        let p = [program];
        let set = PassManager::with_default_passes().run(&ctx(&p, &placements));
        let res: Vec<_> = set.iter().filter(|d| d.pass == "resource-bound").collect();
        assert_eq!(res.len(), 2, "{set}");
        assert_eq!(res[0].severity, Severity::Error);
        assert!(res[0].message.contains("BSO"));
        assert_eq!(res[1].severity, Severity::Warning);
    }

    #[test]
    fn commutativity_pass_reports_overwrites_as_info() {
        let mut b = ProgramBuilder::new("p");
        b.header("key", ValueType::Bit(32));
        b.header("seq", ValueType::Bit(32));
        b.array("u0_reg", 1, 64, 32);
        b.write("u0_reg", vec![Operand::hdr("key")], vec![Operand::hdr("seq")]);
        b.forward();
        let p = [b.build().unwrap()];
        let set = PassManager::with_default_passes().run(&ctx(&p, &[]));
        let comm: Vec<_> = set.iter().filter(|d| d.pass == "commutativity").collect();
        assert_eq!(comm.len(), 1);
        assert_eq!(comm[0].severity, Severity::Info);
        assert!(comm[0].message.contains("overwrite"));
        assert!(!set.has_errors() && !set.has_warnings(), "classification only: {set}");
    }
}
