//! The IR instruction set (paper Fig. 17).
//!
//! An IR program is a straight-line sequence of optionally *guarded* instructions:
//! the frontend converts `if/else` branches into ternary/predicated form
//! (`condition ? instr`, paper §4.2 pass 3), so there is no control-flow transfer
//! in the IR — a property required by pipeline devices where a packet traverses
//! the stages exactly once.

use crate::types::Value;
use std::fmt;

/// Stable identifier of an instruction within a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstrId(pub u32);

impl fmt::Display for InstrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// An operand of an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A (temporary) variable, in SSA form after the frontend.
    Var(String),
    /// A literal constant.
    Const(Value),
    /// A packet header field, e.g. `hdr.key`.
    Header(String),
    /// Per-packet metadata maintained by the INC layer (e.g. `meta.step`).
    Meta(String),
}

impl Operand {
    /// Convenience constructor for integer constants.
    pub fn int(v: i64) -> Operand {
        Operand::Const(Value::Int(v))
    }

    /// Convenience constructor for variables.
    pub fn var(name: impl Into<String>) -> Operand {
        Operand::Var(name.into())
    }

    /// Convenience constructor for header fields.
    pub fn hdr(name: impl Into<String>) -> Operand {
        Operand::Header(name.into())
    }

    /// Name read by this operand, if it is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Operand::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the operand is a compile-time constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::Const(_))
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Var(v) => write!(f, "{v}"),
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Header(h) => write!(f, "hdr.{h}"),
            Operand::Meta(m) => write!(f, "meta.{m}"),
        }
    }
}

/// Arithmetic / bit operations (`calc` in Fig. 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Integer or float addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication (class BIC for integers, BCA for floats).
    Mul,
    /// Division (class BIC / BCA).
    Div,
    /// Modulus (class BIC).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift by a constant.
    Shl,
    /// Right shift by a constant.
    Shr,
    /// Minimum of two operands.
    Min,
    /// Maximum of two operands.
    Max,
    /// Bit-slice extraction (`slice()` in Table 7); the rhs encodes `(hi<<8)|lo`.
    Slice,
}

impl AluOp {
    /// Whether the operation belongs to the "complex integer" class BIC rather
    /// than the basic class BIN (paper Table 9).
    pub fn is_complex_int(&self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Div | AluOp::Mod)
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "+",
            AluOp::Sub => "-",
            AluOp::Mul => "*",
            AluOp::Div => "/",
            AluOp::Mod => "%",
            AluOp::And => "&",
            AluOp::Or => "|",
            AluOp::Xor => "^",
            AluOp::Shl => "<<",
            AluOp::Shr => ">>",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::Slice => "slice",
        };
        write!(f, "{s}")
    }
}

/// Comparison operators (`compare` in Fig. 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison on two integers.
    pub fn eval_int(&self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison with swapped operands (`a op b  ==  b op.swap() a`).
    pub fn swapped(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the comparison.
    pub fn negated(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A single atomic predicate `lhs op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left operand.
    pub lhs: Operand,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Operand,
}

impl Predicate {
    /// Construct a predicate.
    pub fn new(lhs: Operand, op: CmpOp, rhs: Operand) -> Self {
        Predicate { lhs, op, rhs }
    }

    /// The negated predicate.
    pub fn negated(&self) -> Predicate {
        Predicate { lhs: self.lhs.clone(), op: self.op.negated(), rhs: self.rhs.clone() }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A guard: conjunction of predicates that must all hold for the guarded
/// instruction to execute (nested `if`s flatten into a conjunction).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Guard {
    /// All predicates must be true.
    pub all: Vec<Predicate>,
}

impl Guard {
    /// The empty (always-true) guard.
    pub fn always() -> Guard {
        Guard { all: Vec::new() }
    }

    /// A guard with a single predicate.
    pub fn single(p: Predicate) -> Guard {
        Guard { all: vec![p] }
    }

    /// Conjoin another predicate.
    pub fn and(mut self, p: Predicate) -> Guard {
        self.all.push(p);
        self
    }

    /// Whether the guard is trivially true.
    pub fn is_always(&self) -> bool {
        self.all.is_empty()
    }

    /// Total bit width of the operands referenced by the guard; Tofino limits the
    /// width a gateway can evaluate in one stage (Appendix E.1).
    pub fn operand_count(&self) -> usize {
        self.all.len() * 2
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all.is_empty() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self.all.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", parts.join(" && "))
    }
}

/// The operation performed by an instruction.
///
/// The variants cover the declaration-free "operation" half of the IR syntax in
/// Fig. 17; object declarations live in [`crate::ObjectDecl`] and are kept in the
/// program header rather than in the instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub enum OpCode {
    /// `dest = src` — plain move/copy.
    Assign {
        /// Destination variable.
        dest: String,
        /// Source operand.
        src: Operand,
    },
    /// `dest = lhs op rhs` — arithmetic / bit operation.
    Alu {
        /// Destination variable.
        dest: String,
        /// Operation.
        op: AluOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
        /// Whether the operation is on floating-point values (class BCA).
        float: bool,
    },
    /// `dest = (lhs cmp rhs)` — comparison producing a boolean.
    Cmp {
        /// Destination variable.
        dest: String,
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dest = hash(key...)` using a declared [`crate::ObjectKind::Hash`] object.
    Hash {
        /// Destination variable.
        dest: String,
        /// Name of the hash object.
        object: String,
        /// Key operands.
        keys: Vec<Operand>,
    },
    /// `dest = get(object, index/key)` — read from an Array/Seq/Sketch/Table.
    ReadState {
        /// Destination variable.
        dest: String,
        /// Name of the object.
        object: String,
        /// Index (arrays/seq/sketch row) or key (tables).
        index: Vec<Operand>,
    },
    /// `write(object, index/key, value)` — write into a stateful object.
    WriteState {
        /// Name of the object.
        object: String,
        /// Index or key operands.
        index: Vec<Operand>,
        /// Value operands.
        value: Vec<Operand>,
    },
    /// `dest = count(object, index, delta)` — read-modify-write increment, the
    /// primitive behind counters and Count-Min sketches.
    CountState {
        /// Destination variable receiving the post-increment value (optional).
        dest: Option<String>,
        /// Name of the object.
        object: String,
        /// Index operands.
        index: Vec<Operand>,
        /// Increment.
        delta: Operand,
    },
    /// `clear(object)` — reset an object (control-plane assisted on ASICs).
    ClearState {
        /// Name of the object.
        object: String,
    },
    /// `del(object, index)` — invalidate one entry of a stateful object.
    DeleteState {
        /// Name of the object.
        object: String,
        /// Index operands.
        index: Vec<Operand>,
    },
    /// `drop()` — drop the packet.
    Drop,
    /// `fwd()` / `forward(hdr)` — forward the packet along its normal route.
    Forward,
    /// `back(hdr={...})` — swap src/dst and send the packet back to its sender,
    /// optionally rewriting header fields.
    Back {
        /// Header field rewrites applied before bouncing the packet.
        updates: Vec<(String, Operand)>,
    },
    /// `mirror(hdr={...})` — clone the packet to the CPU / a mirror session.
    Mirror {
        /// Header field rewrites applied to the mirrored copy.
        updates: Vec<(String, Operand)>,
    },
    /// `multicast(group)` — replicate the packet to a multicast group.
    Multicast {
        /// Multicast group id.
        group: Operand,
    },
    /// `copyto(target, value)` — copy data to an out-of-band target (e.g. `"CPU"`).
    CopyTo {
        /// Target name.
        target: String,
        /// Values copied.
        values: Vec<Operand>,
    },
    /// `hdr.field = value` — header rewrite.
    SetHeader {
        /// Header field name.
        field: String,
        /// New value.
        value: Operand,
    },
    /// `dest = encrypt/decrypt(object, input)` using a Crypto object.
    Crypto {
        /// Destination variable.
        dest: String,
        /// Name of the crypto object.
        object: String,
        /// Input operand.
        input: Operand,
        /// True for encryption, false for decryption.
        encrypt: bool,
    },
    /// `dest = randint(bound)` — random integer (class BAF, `_randint`).
    RandInt {
        /// Destination variable.
        dest: String,
        /// Exclusive upper bound.
        bound: Operand,
    },
    /// `dest = checksum(inputs...)` — csum16 computation.
    Checksum {
        /// Destination variable.
        dest: String,
        /// Inputs folded into the checksum.
        inputs: Vec<Operand>,
    },
    /// A no-op, used as a placeholder when instructions are lazily removed
    /// (paper §6, lazy enforcement of program removal).
    NoOp,
}

impl OpCode {
    /// The variable written by this operation, if any.
    pub fn dest(&self) -> Option<&str> {
        match self {
            OpCode::Assign { dest, .. }
            | OpCode::Alu { dest, .. }
            | OpCode::Cmp { dest, .. }
            | OpCode::Hash { dest, .. }
            | OpCode::ReadState { dest, .. }
            | OpCode::Crypto { dest, .. }
            | OpCode::RandInt { dest, .. }
            | OpCode::Checksum { dest, .. } => Some(dest),
            OpCode::CountState { dest, .. } => dest.as_deref(),
            _ => None,
        }
    }

    /// The stateful/functional object referenced by this operation, if any.
    pub fn object(&self) -> Option<&str> {
        match self {
            OpCode::Hash { object, .. }
            | OpCode::ReadState { object, .. }
            | OpCode::WriteState { object, .. }
            | OpCode::CountState { object, .. }
            | OpCode::ClearState { object }
            | OpCode::DeleteState { object, .. }
            | OpCode::Crypto { object, .. } => Some(object),
            _ => None,
        }
    }

    /// Whether the operation has packet-level side effects (drop/forward/etc.).
    pub fn is_packet_action(&self) -> bool {
        matches!(
            self,
            OpCode::Drop
                | OpCode::Forward
                | OpCode::Back { .. }
                | OpCode::Mirror { .. }
                | OpCode::Multicast { .. }
                | OpCode::CopyTo { .. }
        )
    }

    /// Short mnemonic used in dumps and by the backends.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpCode::Assign { .. } => "mov",
            OpCode::Alu { .. } => "alu",
            OpCode::Cmp { .. } => "cmp",
            OpCode::Hash { .. } => "hash",
            OpCode::ReadState { .. } => "get",
            OpCode::WriteState { .. } => "write",
            OpCode::CountState { .. } => "count",
            OpCode::ClearState { .. } => "clear",
            OpCode::DeleteState { .. } => "del",
            OpCode::Drop => "drop",
            OpCode::Forward => "fwd",
            OpCode::Back { .. } => "back",
            OpCode::Mirror { .. } => "mirror",
            OpCode::Multicast { .. } => "mcast",
            OpCode::CopyTo { .. } => "copyto",
            OpCode::SetHeader { .. } => "sethdr",
            OpCode::Crypto { .. } => "crypto",
            OpCode::RandInt { .. } => "randint",
            OpCode::Checksum { .. } => "csum",
            OpCode::NoOp => "nop",
        }
    }
}

/// A single IR instruction: an operation, an optional guard, and the annotation
/// metadata used for multi-user incremental compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// Stable identifier.
    pub id: InstrId,
    /// The operation.
    pub op: OpCode,
    /// Optional guard (predicated execution).
    pub guard: Option<Guard>,
    /// Owning user program annotations (paper §6, "annotation-based method").
    /// Empty for instructions belonging solely to the operator's base program.
    /// Shared instructions carry every owning user.
    pub owners: Vec<String>,
}

impl Instruction {
    /// Create an unguarded instruction.
    pub fn new(id: u32, op: OpCode) -> Instruction {
        Instruction { id: InstrId(id), op, guard: None, owners: Vec::new() }
    }

    /// Create a guarded instruction.
    pub fn guarded(id: u32, op: OpCode, guard: Guard) -> Instruction {
        let guard = if guard.is_always() { None } else { Some(guard) };
        Instruction { id: InstrId(id), op, guard, owners: Vec::new() }
    }

    /// Attach an owner annotation (builder style).
    pub fn with_owner(mut self, owner: impl Into<String>) -> Instruction {
        self.owners.push(owner.into());
        self
    }

    /// Whether the instruction belongs (only) to the operator's base program.
    pub fn is_base(&self) -> bool {
        self.owners.is_empty()
    }

    /// The destination variable written, if any.
    pub fn dest(&self) -> Option<&str> {
        self.op.dest()
    }

    /// The object referenced, if any.
    pub fn object(&self) -> Option<&str> {
        self.op.object()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            write!(f, "[{}] ({}) ? {}", self.id, g, self.op.mnemonic())
        } else {
            write!(f, "[{}] {}", self.id, self.op.mnemonic())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(dest: &str) -> OpCode {
        OpCode::Alu {
            dest: dest.into(),
            op: AluOp::Add,
            lhs: Operand::var("a"),
            rhs: Operand::int(1),
            float: false,
        }
    }

    #[test]
    fn operand_helpers() {
        assert_eq!(Operand::int(3), Operand::Const(Value::Int(3)));
        assert_eq!(Operand::var("x").as_var(), Some("x"));
        assert_eq!(Operand::hdr("key").as_var(), None);
        assert!(Operand::int(1).is_const());
        assert!(!Operand::var("x").is_const());
        assert_eq!(Operand::hdr("key").to_string(), "hdr.key");
        assert_eq!(Operand::Meta("step".into()).to_string(), "meta.step");
    }

    #[test]
    fn cmp_eval_and_negation() {
        assert!(CmpOp::Lt.eval_int(1, 2));
        assert!(!CmpOp::Lt.eval_int(2, 2));
        assert!(CmpOp::Ge.eval_int(2, 2));
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.negated(), CmpOp::Ne);
        assert_eq!(CmpOp::Le.swapped(), CmpOp::Ge);
        // negation is an involution
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn alu_complexity_classes() {
        assert!(AluOp::Mul.is_complex_int());
        assert!(AluOp::Mod.is_complex_int());
        assert!(!AluOp::Add.is_complex_int());
        assert!(!AluOp::Xor.is_complex_int());
    }

    #[test]
    fn guard_construction_and_display() {
        let g = Guard::single(Predicate::new(Operand::hdr("op"), CmpOp::Eq, Operand::int(1)))
            .and(Predicate::new(Operand::var("valid"), CmpOp::Ne, Operand::int(0)));
        assert_eq!(g.all.len(), 2);
        assert!(!g.is_always());
        assert_eq!(g.operand_count(), 4);
        assert_eq!(g.to_string(), "hdr.op == 1 && valid != 0");
        assert_eq!(Guard::always().to_string(), "true");
        assert!(Guard::always().is_always());
    }

    #[test]
    fn predicate_negation() {
        let p = Predicate::new(Operand::var("x"), CmpOp::Lt, Operand::int(10));
        assert_eq!(p.negated().op, CmpOp::Ge);
        assert_eq!(p.negated().negated(), p);
    }

    #[test]
    fn opcode_dest_and_object_extraction() {
        assert_eq!(alu("x").dest(), Some("x"));
        let read = OpCode::ReadState {
            dest: "v".into(),
            object: "cache".into(),
            index: vec![Operand::hdr("key")],
        };
        assert_eq!(read.dest(), Some("v"));
        assert_eq!(read.object(), Some("cache"));
        assert_eq!(OpCode::Drop.dest(), None);
        assert!(OpCode::Drop.is_packet_action());
        assert!(!alu("x").is_packet_action());
        let cnt = OpCode::CountState {
            dest: None,
            object: "cms".into(),
            index: vec![Operand::var("i")],
            delta: Operand::int(1),
        };
        assert_eq!(cnt.dest(), None);
        assert_eq!(cnt.object(), Some("cms"));
    }

    #[test]
    fn guarded_instruction_drops_trivial_guard() {
        let i = Instruction::guarded(0, OpCode::Drop, Guard::always());
        assert!(i.guard.is_none());
        let i = Instruction::guarded(
            1,
            OpCode::Drop,
            Guard::single(Predicate::new(Operand::var("x"), CmpOp::Eq, Operand::int(0))),
        );
        assert!(i.guard.is_some());
    }

    #[test]
    fn ownership_annotations() {
        let i = Instruction::new(0, OpCode::Forward);
        assert!(i.is_base());
        let i = i.with_owner("kvs_0");
        assert!(!i.is_base());
        assert_eq!(i.owners, vec!["kvs_0".to_string()]);
    }

    #[test]
    fn display_forms() {
        let i = Instruction::new(4, OpCode::Forward);
        assert_eq!(i.to_string(), "[i4] fwd");
        let g = Guard::single(Predicate::new(Operand::var("x"), CmpOp::Gt, Operand::int(0)));
        let i = Instruction::guarded(5, OpCode::Drop, g);
        assert_eq!(i.to_string(), "[i5] (x > 0) ? drop");
    }
}
