//! Application scenarios and performance accounting.
//!
//! The Fig. 13 experiment sends sparse-gradient traffic from a set of workers
//! towards a parameter server across a configurable sequence of programmable
//! hops, and measures (a) the aggregation *goodput* — how many bytes of useful
//! gradient data are reduced per unit time, limited by the most congested link
//! or the slowest processing element — and (b) the *in-network processing
//! latency* accumulated over the INC devices on the path.  The KVS scenario
//! measures cache hit ratio, server offload and average lookup latency for a
//! skewed request stream.

use crate::interp::{DevicePlane, PacketAction};
use crate::packet::{gradient_packet, kvs_request};
use crate::zipf::ZipfSampler;
use clickinc_ir::Value;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::Serialize;
use std::collections::BTreeMap;

/// The emulated path: a sequence of programmable hops between the traffic
/// sources and the destination host, plus the link rate and the destination
/// host's per-packet software processing cost.
#[derive(Debug)]
pub struct NetworkSetup {
    /// Programmable devices in traffic order (may be empty = pure DPDK baseline).
    pub hops: Vec<DevicePlane>,
    /// Link rate between hops in Gbps.
    pub link_gbps: f64,
    /// Destination-host software cost per received packet, in nanoseconds
    /// (the DPDK receive + aggregate path).
    pub host_per_packet_ns: f64,
}

impl NetworkSetup {
    /// A setup with the given hops and 100 Gbps links.
    pub fn new(hops: Vec<DevicePlane>) -> NetworkSetup {
        NetworkSetup { hops, link_gbps: 100.0, host_per_packet_ns: 550.0 }
    }
}

/// Configuration of the gradient-aggregation workload.
#[derive(Debug, Clone)]
pub struct AggregationConfig {
    /// Number of workers.
    pub workers: usize,
    /// Number of aggregation rounds (distinct sequence numbers).
    pub rounds: usize,
    /// Parameter-vector dimensions carried per packet.
    pub dims: usize,
    /// Fraction of `block_size`-aligned blocks that are entirely zero.
    pub sparsity: f64,
    /// Sparse block size (dimensions per block).
    pub block_size: usize,
    /// RNG seed (deterministic workloads for reproducibility).
    pub seed: u64,
    /// Numeric user id carried in the INC header. Programs installed directly
    /// on a plane accept any id (0); controller deployments are guarded and
    /// only process traffic carrying their assigned id
    /// (`Controller::numeric_id_of`).
    pub user: i64,
}

impl Default for AggregationConfig {
    fn default() -> Self {
        AggregationConfig {
            workers: 4,
            rounds: 200,
            dims: 32,
            sparsity: 0.5,
            block_size: 8,
            seed: 7,
            user: 0,
        }
    }
}

/// Results of the gradient-aggregation scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AggregationReport {
    /// Aggregation goodput in Gbps (useful gradient bytes reduced per second).
    pub goodput_gbps: f64,
    /// Mean in-network processing latency per packet in nanoseconds
    /// (0 when no programmable hop runs a program).
    pub inc_latency_ns: f64,
    /// Bytes that crossed the final (server) link.
    pub bytes_at_server_link: u64,
    /// Packets the parameter server had to process in software.
    pub packets_at_server: u64,
    /// Whether every round's aggregate matched the ground-truth sum.
    pub aggregation_correct: bool,
    /// Total packets injected by the workers.
    pub packets_sent: u64,
}

/// Run the sparse-gradient aggregation workload over the given path.
pub fn run_aggregation_scenario(
    setup: &mut NetworkSetup,
    config: &AggregationConfig,
) -> AggregationReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut truth: BTreeMap<(usize, usize), i64> = BTreeMap::new(); // (round, dim) -> sum
    let mut aggregated: BTreeMap<(usize, usize), i64> = BTreeMap::new();
    let mut host_partial: BTreeMap<(usize, usize), i64> = BTreeMap::new();

    let mut bytes_per_link: Vec<u64> = vec![0; setup.hops.len() + 1];
    let mut packets_at_server: u64 = 0;
    let mut packets_sent: u64 = 0;
    let mut total_inc_latency = 0.0;
    let mut inc_latency_samples = 0u64;

    for round in 0..config.rounds {
        for worker in 0..config.workers {
            // build the (possibly sparse) gradient vector
            let mut values = vec![0i64; config.dims];
            let blocks = config.dims.div_ceil(config.block_size.max(1));
            for b in 0..blocks {
                let zero_block = rng.gen_bool(config.sparsity.clamp(0.0, 1.0));
                let end = ((b + 1) * config.block_size).min(config.dims);
                for value in &mut values[b * config.block_size..end] {
                    *value = if zero_block { 0 } else { rng.gen_range(1..100) };
                }
            }
            for (d, v) in values.iter().enumerate() {
                *truth.entry((round, d)).or_insert(0) += v;
            }
            let mut pkt = gradient_packet(
                "worker",
                "ps",
                config.user,
                round as i64,
                worker,
                config.dims,
                &values,
            );
            packets_sent += 1;

            let mut delivered = true;
            let mut pkt_latency = 0.0;
            for (hop_idx, hop) in setup.hops.iter_mut().enumerate() {
                bytes_per_link[hop_idx] += pkt.wire_bytes() as u64;
                if !hop.has_program() {
                    continue;
                }
                let outcome = hop.process(&mut pkt);
                pkt_latency += outcome.latency_ns;
                match outcome.action {
                    PacketAction::Drop => {
                        delivered = false;
                        break;
                    }
                    PacketAction::Back => {
                        // completed aggregate released by the network
                        for d in 0..config.dims {
                            if let Value::Int(v) = pkt.inc.get(&format!("data_{d}")) {
                                aggregated.insert((round, d), v);
                            }
                        }
                        delivered = false;
                        break;
                    }
                    PacketAction::Forward => {}
                }
            }
            if pkt_latency > 0.0 {
                total_inc_latency += pkt_latency;
                inc_latency_samples += 1;
            }
            if delivered {
                // last link into the server
                bytes_per_link[setup.hops.len()] += pkt.wire_bytes() as u64;
                packets_at_server += 1;
                // the parameter server aggregates in software
                for d in 0..config.dims {
                    let v = pkt.inc.get(&format!("data_{d}")).as_int().unwrap_or(0);
                    let slot = host_partial.entry((round, d)).or_insert(0);
                    *slot += v;
                }
            }
        }
    }

    // merge host-side partial sums with in-network results
    for ((round, d), v) in host_partial {
        *aggregated.entry((round, d)).or_insert(0) += v;
    }
    let aggregation_correct =
        truth.iter().all(|(k, v)| aggregated.get(k).copied().unwrap_or(0) == *v);

    // Timing model.  Switches and smartNICs process at line rate, so the
    // completion time of one training iteration is bounded by
    //  * the per-worker links before the first switch — every worker (and its
    //    own smartNIC, whose host-side link is local DMA and therefore skipped)
    //    has a dedicated port, so those links each carry 1/W of the bytes;
    //  * the shared links after the first switch (and the final server link),
    //    which carry every worker's surviving traffic;
    //  * the parameter server's software receive path (per-packet cost plus a
    //    per-byte copy/aggregate cost).
    let first_hop_is_nic = setup
        .hops
        .first()
        .map(|h| {
            matches!(
                h.model.kind,
                clickinc_device::DeviceKind::NfpSmartNic
                    | clickinc_device::DeviceKind::FpgaSmartNic
            ) && h.has_program()
        })
        .unwrap_or(false);
    let first_switch = setup.hops.iter().position(|h| {
        matches!(
            h.model.kind,
            clickinc_device::DeviceKind::Tofino
                | clickinc_device::DeviceKind::Tofino2
                | clickinc_device::DeviceKind::Trident4
        )
    });
    let shared_start = first_switch.map(|i| i + 1).unwrap_or(setup.hops.len());
    let mut worker_link_time_ns = 0.0_f64;
    let mut shared_link_time_ns = 0.0_f64;
    for (i, bytes) in bytes_per_link.iter().enumerate() {
        if i == 0 && first_hop_is_nic {
            continue; // host → its own smartNIC: local DMA, not a network link
        }
        let t = *bytes as f64 * 8.0 / setup.link_gbps;
        if i >= shared_start || i == setup.hops.len() {
            shared_link_time_ns = shared_link_time_ns.max(t);
        } else {
            worker_link_time_ns = worker_link_time_ns.max(t / config.workers.max(1) as f64);
        }
    }
    let host_time_ns = packets_at_server as f64 * setup.host_per_packet_ns
        + bytes_per_link[setup.hops.len()] as f64 * 1.5;
    let total_time_ns = worker_link_time_ns.max(shared_link_time_ns).max(host_time_ns).max(1.0);

    // useful data: one aggregated vector per round per worker contribution
    let useful_bits = (config.rounds * config.dims * 4 * 8) as f64 * config.workers as f64;
    let goodput_gbps = useful_bits / total_time_ns;

    AggregationReport {
        goodput_gbps,
        inc_latency_ns: if inc_latency_samples == 0 {
            0.0
        } else {
            total_inc_latency / inc_latency_samples as f64
        },
        bytes_at_server_link: bytes_per_link[setup.hops.len()],
        packets_at_server,
        aggregation_correct,
        packets_sent,
    }
}

/// Configuration of the KVS workload.
#[derive(Debug, Clone)]
pub struct KvsConfig {
    /// Number of requests.
    pub requests: usize,
    /// Key universe size.
    pub keys: usize,
    /// Number of hot keys pre-installed in the in-network cache.
    pub cached_keys: usize,
    /// Zipf-like skew exponent (0 = uniform).
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
    /// Numeric user id carried in the INC header (see
    /// [`AggregationConfig::user`]).
    pub user: i64,
    /// Exact name of the cache table to pre-populate. `None` targets every
    /// table named `cache` or `*_cache` on the path — fine for single-tenant
    /// setups, but when tenants share a hop name the table explicitly
    /// (isolation renames `cache` to `<user>_cache`) so another tenant's
    /// state is never touched.
    pub cache_table: Option<String>,
}

impl Default for KvsConfig {
    fn default() -> Self {
        KvsConfig {
            requests: 2000,
            keys: 1000,
            cached_keys: 64,
            skew: 1.1,
            seed: 11,
            user: 0,
            cache_table: None,
        }
    }
}

/// Results of the KVS scenario.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KvsReport {
    /// Fraction of requests answered by the in-network cache.
    pub hit_ratio: f64,
    /// Requests that reached the backend server.
    pub server_requests: u64,
    /// Mean lookup latency in nanoseconds.
    pub mean_latency_ns: f64,
    /// Every reply carried the correct value for its key.
    pub replies_correct: bool,
}

/// The KVS backend's ground-truth value for a key.  Shared by the scenario
/// loop, the engine-backed serving drivers and every cache pre-population
/// helper, so "the reply carried the correct value" means the same thing on
/// every serving path.
pub fn kvs_backend_value(key: i64) -> i64 {
    key * 1000 + 7
}

/// Run a skewed KVS request stream over the path.  The cache (if a device runs
/// the KVS program) is pre-populated with the `cached_keys` hottest keys, and
/// the backend server holds every key with value [`kvs_backend_value`].
pub fn run_kvs_scenario(setup: &mut NetworkSetup, config: &KvsConfig) -> KvsReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let value_of = kvs_backend_value;
    // Populate the in-network cache on whichever hop hosts the KVS table.
    for hop in setup.hops.iter_mut() {
        if !hop.has_program() {
            continue;
        }
        let caches: Vec<String> = hop
            .store()
            .table_names()
            .into_iter()
            .filter(|n| match &config.cache_table {
                Some(wanted) => n == wanted,
                None => n == "cache" || n.ends_with("_cache"),
            })
            .collect();
        for table in caches {
            for key in 0..config.cached_keys as i64 {
                hop.store_mut().table_write(
                    &table,
                    &[Value::Int(key)],
                    vec![Value::Int(value_of(key))],
                );
            }
        }
    }

    // Zipf sampling (popularity ∝ 1/(rank+1)^skew) over a precomputed CDF:
    // one uniform variate + binary search per request, deterministic for a
    // fixed seed.
    let zipf = ZipfSampler::new(config.keys, config.skew);

    let mut hits = 0u64;
    let mut server_requests = 0u64;
    let mut total_latency = 0.0;
    let mut replies_correct = true;

    for _ in 0..config.requests {
        let key = zipf.sample(&mut rng);
        let mut pkt = kvs_request("client", "server", config.user, key as i64);
        let mut latency = 0.0;
        let mut answered_in_network = false;
        for hop in setup.hops.iter_mut() {
            if !hop.has_program() {
                latency += hop.model.base_latency_ns;
                continue;
            }
            let outcome = hop.process(&mut pkt);
            latency += outcome.latency_ns;
            match outcome.action {
                PacketAction::Back => {
                    answered_in_network = true;
                    if pkt.inc.get("vals") != Value::Int(value_of(key as i64)) {
                        replies_correct = false;
                    }
                    break;
                }
                PacketAction::Drop => {
                    answered_in_network = true;
                    break;
                }
                PacketAction::Forward => {}
            }
        }
        if answered_in_network {
            hits += 1;
        } else {
            server_requests += 1;
            latency += setup.host_per_packet_ns + 2.0 * 10_000.0; // server RTT
        }
        total_latency += latency;
    }

    KvsReport {
        hit_ratio: hits as f64 / config.requests.max(1) as f64,
        server_requests,
        mean_latency_ns: total_latency / config.requests.max(1) as f64,
        replies_correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_device::DeviceModel;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{
        kvs_template, mlagg_sparse_user, mlagg_template, KvsParams, MlAggParams,
    };

    fn mlagg_plane(dims: u32, workers: u32) -> DevicePlane {
        let t = mlagg_template(
            "mlagg",
            MlAggParams { dims, num_workers: workers, num_aggregators: 4096, ..Default::default() },
        );
        let ir = compile_source("mlagg", &t.source).unwrap();
        let mut p = DevicePlane::new("SW0", DeviceModel::tofino());
        p.install(ir);
        p
    }

    fn sparse_plane(dims: u32, workers: u32) -> DevicePlane {
        // only the sparse-compression half: detect zero blocks and delete them
        let t = mlagg_sparse_user(
            "sparse",
            MlAggParams { dims, num_workers: workers, num_aggregators: 4096, ..Default::default() },
            dims / 8,
            8,
        );
        // strip the trailing template invocation so only compression runs here
        let src: String = t
            .source
            .lines()
            .filter(|l| !l.trim_start().starts_with("agg(hdr)"))
            .collect::<Vec<_>>()
            .join("\n");
        let ir = compile_source("sparse", &src).unwrap();
        let mut p = DevicePlane::new("NIC0", DeviceModel::nfp_smartnic());
        p.install(ir);
        p
    }

    fn cfg(dims: usize, workers: usize) -> AggregationConfig {
        AggregationConfig {
            workers,
            rounds: 50,
            dims,
            sparsity: 0.5,
            block_size: 8,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_delivers_everything_to_the_server() {
        let mut setup = NetworkSetup::new(vec![DevicePlane::new("SW0", DeviceModel::tofino())]);
        let config = cfg(32, 4);
        let report = run_aggregation_scenario(&mut setup, &config);
        assert!(report.aggregation_correct);
        assert_eq!(report.packets_at_server, report.packets_sent);
        assert_eq!(report.inc_latency_ns, 0.0);
        assert!(report.goodput_gbps > 0.0);
    }

    #[test]
    fn in_network_aggregation_reduces_server_traffic_and_raises_goodput() {
        let config = cfg(32, 4);
        let mut baseline = NetworkSetup::new(vec![DevicePlane::new("SW0", DeviceModel::tofino())]);
        let base = run_aggregation_scenario(&mut baseline, &config);

        let mut switch = NetworkSetup::new(vec![mlagg_plane(32, 4)]);
        let agg = run_aggregation_scenario(&mut switch, &config);

        assert!(agg.aggregation_correct, "in-network aggregation must be exact");
        assert!(agg.packets_at_server < base.packets_at_server);
        assert!(agg.bytes_at_server_link < base.bytes_at_server_link);
        assert!(
            agg.goodput_gbps > base.goodput_gbps,
            "aggregation goodput {} should beat baseline {}",
            agg.goodput_gbps,
            base.goodput_gbps
        );
        assert!(agg.inc_latency_ns > 0.0);
    }

    #[test]
    fn sparse_compression_alone_reduces_bytes_but_not_packets() {
        let config = AggregationConfig { sparsity: 0.75, ..cfg(32, 4) };
        let mut baseline = NetworkSetup::new(vec![DevicePlane::new("SW0", DeviceModel::tofino())]);
        let base = run_aggregation_scenario(&mut baseline, &config);
        let mut nic = NetworkSetup::new(vec![sparse_plane(32, 4)]);
        let comp = run_aggregation_scenario(&mut nic, &config);
        assert!(comp.aggregation_correct);
        assert_eq!(comp.packets_at_server, base.packets_at_server);
        assert!(comp.bytes_at_server_link < base.bytes_at_server_link);
        assert!(comp.goodput_gbps >= base.goodput_gbps);
    }

    #[test]
    fn nic_plus_switch_beats_either_alone() {
        let config = AggregationConfig { sparsity: 0.5, ..cfg(32, 4) };
        let mut nic_only = NetworkSetup::new(vec![sparse_plane(32, 4)]);
        let nic = run_aggregation_scenario(&mut nic_only, &config);
        let mut switch_only = NetworkSetup::new(vec![mlagg_plane(32, 4)]);
        let switch = run_aggregation_scenario(&mut switch_only, &config);
        let mut both = NetworkSetup::new(vec![sparse_plane(32, 4), mlagg_plane(32, 4)]);
        let combo = run_aggregation_scenario(&mut both, &config);
        assert!(combo.aggregation_correct);
        assert!(combo.goodput_gbps >= nic.goodput_gbps);
        assert!(combo.goodput_gbps >= switch.goodput_gbps * 0.95);
    }

    #[test]
    fn kvs_scenario_is_deterministic_for_a_fixed_seed() {
        let t = kvs_template("kvs", KvsParams { cache_depth: 1024, ..Default::default() });
        let ir = compile_source("kvs", &t.source).unwrap();
        let run = || {
            let mut plane = DevicePlane::new("ToR0", DeviceModel::tofino());
            plane.install(ir.clone());
            let mut setup = NetworkSetup::new(vec![plane]);
            run_kvs_scenario(&mut setup, &KvsConfig::default())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn kvs_scenario_hits_in_network_for_hot_keys() {
        let t = kvs_template("kvs", KvsParams { cache_depth: 1024, ..Default::default() });
        let ir = compile_source("kvs", &t.source).unwrap();
        let mut plane = DevicePlane::new("ToR0", DeviceModel::tofino());
        plane.install(ir);
        let mut setup = NetworkSetup::new(vec![plane]);
        let report = run_kvs_scenario(&mut setup, &KvsConfig::default());
        assert!(report.replies_correct);
        assert!(
            report.hit_ratio > 0.3,
            "skewed workload should hit the cache: {}",
            report.hit_ratio
        );
        assert!(report.server_requests < 2000);

        // without a cache everything reaches the server and latency rises
        let mut bare = NetworkSetup::new(vec![DevicePlane::new("ToR0", DeviceModel::tofino())]);
        let base = run_kvs_scenario(&mut bare, &KvsConfig::default());
        assert_eq!(base.hit_ratio, 0.0);
        assert!(base.mean_latency_ns > report.mean_latency_ns);
    }
}
