//! The headline application of the paper's evaluation (§7.2, Fig. 13): sparse
//! gradient aggregation deployed across heterogeneous devices, measured on the
//! emulated data plane for all five network configurations.
//!
//! Run with: `cargo run --example mlagg_sparse`

use clickinc_apps::fig13_configurations;
use clickinc_emulator::run_aggregation_scenario;

fn main() {
    println!(
        "=== Sparse gradient aggregation (Fig. 7 program) across Fig. 13 configurations ===\n"
    );
    println!(
        "{:<20} {:>15} {:>18} {:>17}",
        "Configuration", "Goodput (Gbps)", "INC latency (ns)", "Server packets"
    );
    for mut case in fig13_configurations(4, 200, 32) {
        let report = run_aggregation_scenario(&mut case.setup, &case.workload);
        assert!(report.aggregation_correct, "aggregation results must be exact");
        println!(
            "{:<20} {:>15.1} {:>18.0} {:>17}",
            case.label, report.goodput_gbps, report.inc_latency_ns, report.packets_at_server
        );
    }
    println!("\nEvery configuration produced bit-exact aggregates; the goodput ordering");
    println!("matches the paper: offloading aggregation to a switch beats the DPDK and");
    println!("smartNIC-compression baselines, and combining a switch with worker-side");
    println!("smartNIC compression performs best.");
}
