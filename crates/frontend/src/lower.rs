//! AST → IR lowering.
//!
//! See the crate-level documentation for the pass structure.  The lowering keeps
//! a per-scope environment mapping source names to *lowered values* (constants,
//! SSA operands, compile-time lists, object references or template instances),
//! materializes every branch condition into a boolean temporary, and emits
//! φ-style guarded merge copies at branch joins so the resulting instruction
//! stream is straight-line, predicated and in SSA form.

use crate::error::FrontendError;
use clickinc_ir::{
    AluOp, CmpOp, Guard, HashAlgo, Instruction, IrProgram, MatchKind, ObjectDecl, ObjectKind,
    OpCode, Operand, Predicate, SketchKind, Value, ValueType,
};
use clickinc_lang::ast::{BinOp, BoolOp, Expr, Stmt, UnaryOp};
use clickinc_lang::templates::{mlagg_template, MlAggParams};
use clickinc_lang::{BuiltinFn, ModuleLibrary, ObjectCtor, PrimitiveKind, Program};
use std::collections::BTreeMap;

/// Options controlling compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Known widths of application header fields (from the profile's packet
    /// format).  Fields not listed default to [`CompileOptions::default_field_bits`].
    pub header_widths: BTreeMap<String, u16>,
    /// Default width for unknown header fields.
    pub default_field_bits: u16,
    /// Safety cap on the total number of unrolled loop iterations.
    pub max_unroll: usize,
}

impl Default for CompileOptions {
    fn default() -> Self {
        let mut header_widths = BTreeMap::new();
        header_widths.insert("key".to_string(), 128);
        header_widths.insert("op".to_string(), 8);
        header_widths.insert("bitmap".to_string(), 8);
        header_widths.insert("overflow".to_string(), 1);
        CompileOptions { header_widths, default_field_bits: 32, max_unroll: 65536 }
    }
}

/// The compiler frontend.
#[derive(Debug, Default)]
pub struct Frontend {
    library: ModuleLibrary,
}

impl Frontend {
    /// Create a frontend with the default module library.
    pub fn new() -> Frontend {
        Frontend { library: ModuleLibrary::new() }
    }

    /// Create a frontend with a custom module library (extra templates).
    pub fn with_library(library: ModuleLibrary) -> Frontend {
        Frontend { library }
    }

    /// Compile source text.
    pub fn compile_source(
        &self,
        name: &str,
        source: &str,
        opts: &CompileOptions,
    ) -> Result<IrProgram, FrontendError> {
        let ast = clickinc_lang::parse(source)?;
        self.compile_ast(name, &ast, opts)
    }

    /// Compile a parsed AST.
    pub fn compile_ast(
        &self,
        name: &str,
        program: &Program,
        opts: &CompileOptions,
    ) -> Result<IrProgram, FrontendError> {
        let mut lower = Lowerer::new(name, &self.library, opts);
        lower.lower_block(&program.stmts)?;
        let ir = lower.finish();
        check_constant_indices(&ir)?;
        Ok(ir)
    }
}

/// Lower-time mirror of the verifier's `bounds` pass: a *constant* index that
/// falls outside its object's declared geometry can never be right, so the
/// frontend rejects the program outright instead of letting the wrap-around
/// surface as a verifier diagnostic (or, pre-verifier, an emulator surprise).
/// Runtime (variable) indices are left to the emulator's modulo semantics.
fn check_constant_indices(program: &IrProgram) -> Result<(), FrontendError> {
    let const_int = |op: &Operand| match op {
        Operand::Const(v) => v.as_int(),
        _ => None,
    };
    for instr in &program.instructions {
        let (object, index) = match &instr.op {
            OpCode::ReadState { object, index, .. }
            | OpCode::WriteState { object, index, .. }
            | OpCode::CountState { object, index, .. }
            | OpCode::DeleteState { object, index } => (object, index),
            _ => continue,
        };
        let Some(decl) = program.object(object) else { continue };
        let mut checks: Vec<(i64, u64, &str)> = Vec::new();
        match &decl.kind {
            ObjectKind::Array { rows, size, .. } => {
                if index.len() >= 2 {
                    if let Some(row) = const_int(&index[0]) {
                        checks.push((row, u64::from(*rows), "row"));
                    }
                    if let Some(cell) = const_int(&index[1]) {
                        checks.push((cell, u64::from(*size), "cell"));
                    }
                } else if let Some(cell) = index.first().and_then(const_int) {
                    checks.push((cell, u64::from(*size), "cell"));
                }
            }
            ObjectKind::Seq { size, .. } => {
                if let Some(cell) = index.first().and_then(const_int) {
                    checks.push((cell, u64::from(*size), "cell"));
                }
            }
            _ => continue,
        }
        for (value, bound, what) in checks {
            if value < 0 || value as u64 >= bound {
                return Err(FrontendError::BadObjectUse {
                    object: object.clone(),
                    reason: format!(
                        "constant {what} index {value} is out of bounds for the declared \
                         {what} count {bound}"
                    ),
                });
            }
        }
    }
    Ok(())
}

/// A compile-time value produced by expression lowering.
#[derive(Debug, Clone, PartialEq)]
enum Lowered {
    /// Compile-time integer constant.
    Const(i64),
    /// Compile-time float constant.
    ConstF(f64),
    /// Compile-time string (only meaningful inside constructor kwargs).
    Str(String),
    /// A runtime operand (variable or header field).
    Op(Operand),
    /// The `None` literal / a missing value.
    NoneVal,
    /// A compile-time list (e.g. `vals = list()` + `vals.append(...)`).
    List(Vec<Lowered>),
    /// A reference to a declared object.
    Object(String),
}

impl Lowered {
    fn const_int(&self) -> Option<i64> {
        match self {
            Lowered::Const(v) => Some(*v),
            Lowered::ConstF(v) => Some(*v as i64),
            _ => None,
        }
    }

    fn to_operand(&self) -> Result<Operand, FrontendError> {
        match self {
            Lowered::Const(v) => Ok(Operand::int(*v)),
            Lowered::ConstF(v) => Ok(Operand::Const(Value::Float(*v))),
            Lowered::Op(op) => Ok(op.clone()),
            Lowered::NoneVal => Ok(Operand::Const(Value::None)),
            Lowered::Str(s) => Ok(Operand::Const(Value::Bytes(s.as_bytes().to_vec()))),
            Lowered::List(_) => {
                Err(FrontendError::Unsupported("a list cannot be used as a runtime value".into()))
            }
            Lowered::Object(name) => Err(FrontendError::BadObjectUse {
                object: name.clone(),
                reason: "objects cannot be used as scalar values".into(),
            }),
        }
    }

    fn is_float(&self) -> bool {
        matches!(self, Lowered::ConstF(_))
    }
}

/// A template instantiated by the user program (e.g. `agg = MLAgg(...)`).
#[derive(Debug, Clone)]
struct TemplateInstance {
    template: String,
    kwargs: BTreeMap<String, i64>,
}

/// Environment entry.
#[derive(Debug, Clone)]
enum EnvEntry {
    Value(Lowered),
    Template(TemplateInstance),
}

type Env = BTreeMap<String, EnvEntry>;

struct Lowerer<'a> {
    name: String,
    library: &'a ModuleLibrary,
    opts: &'a CompileOptions,
    objects: Vec<ObjectDecl>,
    headers: BTreeMap<String, u16>,
    instructions: Vec<Instruction>,
    next_instr: u32,
    next_tmp: u32,
    guard: Vec<Predicate>,
    env: Env,
    funcs: BTreeMap<String, (Vec<String>, Vec<Stmt>)>,
    ret_slots: Vec<String>,
    unrolled: usize,
}

impl<'a> Lowerer<'a> {
    fn new(name: &str, library: &'a ModuleLibrary, opts: &'a CompileOptions) -> Lowerer<'a> {
        Lowerer {
            name: name.to_string(),
            library,
            opts,
            objects: Vec::new(),
            headers: BTreeMap::new(),
            instructions: Vec::new(),
            next_instr: 0,
            next_tmp: 0,
            guard: Vec::new(),
            env: Env::new(),
            funcs: BTreeMap::new(),
            ret_slots: Vec::new(),
            unrolled: 0,
        }
    }

    fn finish(self) -> IrProgram {
        let mut program = IrProgram::new(self.name);
        program.objects = self.objects;
        program.headers = self
            .headers
            .into_iter()
            .map(|(name, bits)| clickinc_ir::HeaderFieldDecl::new(name, ValueType::Bit(bits)))
            .collect();
        program.instructions = self.instructions;
        program
    }

    // ---- helpers -------------------------------------------------------------

    fn fresh_tmp(&mut self) -> String {
        let t = format!("$t{}", self.next_tmp);
        self.next_tmp += 1;
        t
    }

    fn fresh_phi(&mut self, base: &str) -> String {
        let t = format!("{base}.{}", self.next_tmp);
        self.next_tmp += 1;
        t
    }

    fn emit(&mut self, op: OpCode) {
        let id = self.next_instr;
        self.next_instr += 1;
        let instr = if self.guard.is_empty() {
            Instruction::new(id, op)
        } else {
            Instruction::guarded(id, op, Guard { all: self.guard.clone() })
        };
        self.instructions.push(instr);
    }

    fn emit_with_guard(&mut self, op: OpCode, guard: Vec<Predicate>) {
        let id = self.next_instr;
        self.next_instr += 1;
        let instr = if guard.is_empty() {
            Instruction::new(id, op)
        } else {
            Instruction::guarded(id, op, Guard { all: guard })
        };
        self.instructions.push(instr);
    }

    fn header_field(&mut self, field: &str) -> Operand {
        let bits =
            self.opts.header_widths.get(field).copied().unwrap_or(self.opts.default_field_bits);
        self.headers.entry(field.to_string()).or_insert(bits);
        Operand::hdr(field)
    }

    fn lookup(&self, name: &str) -> Option<&EnvEntry> {
        self.env.get(name)
    }

    fn set_value(&mut self, name: &str, value: Lowered) {
        self.env.insert(name.to_string(), EnvEntry::Value(value));
    }

    fn object_kind(&self, name: &str) -> Option<&ObjectKind> {
        self.objects.iter().find(|o| o.name == name).map(|o| &o.kind)
    }

    // ---- statements ----------------------------------------------------------

    fn lower_block(&mut self, stmts: &[Stmt]) -> Result<(), FrontendError> {
        for stmt in stmts {
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), FrontendError> {
        match stmt {
            Stmt::Import { .. } => Ok(()),
            Stmt::FuncDef { name, params, body } => {
                self.funcs.insert(name.clone(), (params.clone(), body.clone()));
                Ok(())
            }
            Stmt::Assign { targets, value } => self.lower_assign(targets, value),
            Stmt::AugAssign { target, op, value } => {
                let desugared = Expr::BinOp {
                    op: *op,
                    lhs: Box::new(target.clone()),
                    rhs: Box::new(value.clone()),
                };
                self.lower_assign(std::slice::from_ref(target), &desugared)
            }
            Stmt::ExprStmt(e) => {
                self.lower_expr(e)?;
                Ok(())
            }
            Stmt::If { cond, body, orelse } => self.lower_if(cond, body, orelse),
            Stmt::For { var, iter, body } => self.lower_for(var, iter, body),
            Stmt::Return(value) => {
                let slot = self.ret_slots.last().cloned().ok_or_else(|| {
                    FrontendError::Unsupported("`return` outside a function".into())
                })?;
                let lowered = match value {
                    Some(e) => self.lower_expr(e)?,
                    None => Lowered::NoneVal,
                };
                self.set_value(&slot, lowered);
                Ok(())
            }
        }
    }

    fn lower_assign(&mut self, targets: &[Expr], value: &Expr) -> Result<(), FrontendError> {
        // Object constructors and template instantiations bind names rather than
        // producing runtime values, so they are dispatched on before general
        // expression lowering.
        if let Some((callee, args, kwargs)) = value.as_named_call() {
            if let Some(ctor) = ObjectCtor::from_name(callee) {
                let target = Self::single_name_target(targets, callee)?;
                return self.declare_object(&target, ctor, args, kwargs);
            }
            if self.library.template_id(callee).is_some() {
                let target = Self::single_name_target(targets, callee)?;
                let mut params = BTreeMap::new();
                for (k, v) in kwargs {
                    if let Some(c) = self.lower_expr(v)?.const_int() {
                        params.insert(k.clone(), c);
                    }
                }
                self.env.insert(
                    target,
                    EnvEntry::Template(TemplateInstance {
                        template: callee.to_string(),
                        kwargs: params,
                    }),
                );
                return Ok(());
            }
            if matches!(BuiltinFn::from_name(callee), Some(BuiltinFn::List)) {
                let target = Self::single_name_target(targets, callee)?;
                self.set_value(&target, Lowered::List(Vec::new()));
                return Ok(());
            }
        }

        let lowered = self.lower_expr(value)?;
        for target in targets {
            match target {
                Expr::Name(name) => {
                    self.set_value(name, lowered.clone());
                }
                Expr::Attribute { .. } | Expr::Index { .. } => {
                    if let Some(field) = self.header_target_field(target)? {
                        let op = lowered.to_operand()?;
                        self.header_field(&field);
                        self.emit(OpCode::SetHeader { field, value: op });
                    } else {
                        return Err(FrontendError::Unsupported(
                            "assignment target must be a name or a header field".into(),
                        ));
                    }
                }
                other => {
                    return Err(FrontendError::Unsupported(format!(
                        "unsupported assignment target {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }

    fn single_name_target(targets: &[Expr], callee: &str) -> Result<String, FrontendError> {
        match targets {
            [Expr::Name(n)] => Ok(n.clone()),
            _ => Err(FrontendError::BadArguments {
                callee: callee.to_string(),
                reason: "constructor results must be assigned to a single name".into(),
            }),
        }
    }

    /// Resolve an assignment target that denotes a header field
    /// (`hdr.x` or `hdr.x[const]`), returning its flattened field name.
    fn header_target_field(&mut self, target: &Expr) -> Result<Option<String>, FrontendError> {
        match target {
            Expr::Attribute { value, attr } => match value.as_ref() {
                Expr::Name(n) if n == "hdr" => Ok(Some(attr.clone())),
                _ => Ok(None),
            },
            Expr::Index { value, index } => {
                if let Expr::Attribute { value: base, attr } = value.as_ref() {
                    if matches!(base.as_ref(), Expr::Name(n) if n == "hdr") {
                        let idx = self.lower_expr(index)?.const_int().ok_or_else(|| {
                            FrontendError::Unsupported(
                                "header vector indices must be compile-time constants".into(),
                            )
                        })?;
                        return Ok(Some(format!("{attr}_{idx}")));
                    }
                }
                Ok(None)
            }
            _ => Ok(None),
        }
    }

    fn declare_object(
        &mut self,
        name: &str,
        ctor: ObjectCtor,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> Result<(), FrontendError> {
        let mut kw: BTreeMap<String, Lowered> = BTreeMap::new();
        for (k, v) in kwargs {
            kw.insert(k.clone(), self.lower_expr(v)?);
        }
        let int_kw = |kw: &BTreeMap<String, Lowered>, key: &str, default: i64| -> i64 {
            kw.get(key).and_then(Lowered::const_int).unwrap_or(default)
        };
        let str_kw = |kw: &BTreeMap<String, Lowered>, key: &str| -> Option<String> {
            kw.get(key).and_then(|v| match v {
                Lowered::Str(s) => Some(s.clone()),
                _ => None,
            })
        };
        let kind = match ctor {
            ObjectCtor::Array => ObjectKind::Array {
                rows: int_kw(&kw, "row", 1) as u32,
                size: int_kw(&kw, "size", 1024) as u32,
                width: int_kw(&kw, "w", 32) as u16,
            },
            ObjectCtor::Seq => ObjectKind::Seq {
                size: int_kw(&kw, "size", 1024) as u32,
                width: int_kw(&kw, "w", 32) as u16,
            },
            ObjectCtor::Table => {
                let match_kind = match str_kw(&kw, "type").as_deref() {
                    Some("ternary") => MatchKind::Ternary,
                    Some("lpm") => MatchKind::Lpm,
                    Some("index") => MatchKind::Index,
                    _ => MatchKind::Exact,
                };
                ObjectKind::Table {
                    match_kind,
                    key_width: int_kw(&kw, "key_bits", 32) as u16,
                    value_width: int_kw(&kw, "val_bits", 32) as u16,
                    depth: int_kw(&kw, "depth", 1024) as u32,
                    stateful: int_kw(&kw, "stateful", 0) != 0,
                }
            }
            ObjectCtor::Sketch => {
                let skind = match str_kw(&kw, "type").as_deref() {
                    Some("bloom-filter") | Some("bloom") => SketchKind::Bloom,
                    _ => SketchKind::CountMin,
                };
                ObjectKind::Sketch {
                    kind: skind,
                    rows: int_kw(&kw, "rows", 3) as u32,
                    cols: int_kw(&kw, "cols", 1024) as u32,
                    width: int_kw(&kw, "w", if skind == SketchKind::Bloom { 1 } else { 32 }) as u16,
                }
            }
            ObjectCtor::Hash => {
                let algo = str_kw(&kw, "type")
                    .and_then(|s| HashAlgo::parse(&s))
                    .unwrap_or(HashAlgo::Crc16);
                let modulus = kw.get("ceil").and_then(Lowered::const_int).map(|v| v as u32);
                // a `key` kwarg, if given, was already lowered above
                // (registering its header fields); nothing further to do
                ObjectKind::Hash { algo, modulus }
            }
            ObjectCtor::Crypto => {
                let algo = match str_kw(&kw, "type").as_deref() {
                    Some("ecs") => clickinc_ir::CryptoAlgo::Ecs,
                    _ => clickinc_ir::CryptoAlgo::Aes,
                };
                ObjectKind::Crypto { algo }
            }
        };
        let _ = args; // positional constructor arguments are accepted but unused
        self.objects.push(ObjectDecl::new(name, kind));
        self.set_value(name, Lowered::Object(name.to_string()));
        Ok(())
    }

    fn lower_if(
        &mut self,
        cond: &Expr,
        body: &[Stmt],
        orelse: &[Stmt],
    ) -> Result<(), FrontendError> {
        let c = self.lower_expr(cond)?;
        // Constant condition: lower only the taken branch.
        if let Some(v) = c.const_int() {
            return if v != 0 { self.lower_block(body) } else { self.lower_block(orelse) };
        }
        let c_op = c.to_operand()?;
        let pred_true = Predicate::new(c_op.clone(), CmpOp::Ne, Operand::int(0));
        let pred_false = Predicate::new(c_op, CmpOp::Eq, Operand::int(0));

        let base_env = self.env.clone();

        self.guard.push(pred_true.clone());
        self.lower_block(body)?;
        self.guard.pop();
        let then_env = std::mem::replace(&mut self.env, base_env.clone());

        self.guard.push(pred_false.clone());
        self.lower_block(orelse)?;
        self.guard.pop();
        let else_env = std::mem::replace(&mut self.env, base_env.clone());

        self.merge_branches(&base_env, then_env, else_env, pred_true, pred_false)
    }

    fn merge_branches(
        &mut self,
        base_env: &Env,
        then_env: Env,
        else_env: Env,
        pred_true: Predicate,
        pred_false: Predicate,
    ) -> Result<(), FrontendError> {
        let mut names: Vec<String> = then_env.keys().chain(else_env.keys()).cloned().collect();
        names.sort();
        names.dedup();
        for name in names {
            let base = base_env.get(&name);
            let t = then_env.get(&name);
            let e = else_env.get(&name);
            match (t, e) {
                (Some(EnvEntry::Value(tv)), Some(EnvEntry::Value(ev))) => {
                    if tv == ev {
                        self.env.insert(name, EnvEntry::Value(tv.clone()));
                        continue;
                    }
                    // lists / objects / templates cannot be merged at runtime
                    if matches!(tv, Lowered::List(_)) || matches!(ev, Lowered::List(_)) {
                        return Err(FrontendError::Unsupported(format!(
                            "list `{name}` modified differently in the two branches"
                        )));
                    }
                    let existed_before = base.is_some();
                    let changed_then = !matches!(base, Some(EnvEntry::Value(bv)) if bv == tv);
                    let changed_else = !matches!(base, Some(EnvEntry::Value(bv)) if bv == ev);
                    if !existed_before && (!changed_then || !changed_else) {
                        // defined in only one branch and unknown otherwise: the
                        // value is unusable after the join, so drop it.
                        continue;
                    }
                    let phi = self.fresh_phi(&name);
                    let t_op = tv.to_operand()?;
                    let e_op = ev.to_operand()?;
                    let mut g_then = self.guard.clone();
                    g_then.push(pred_true.clone());
                    self.emit_with_guard(OpCode::Assign { dest: phi.clone(), src: t_op }, g_then);
                    let mut g_else = self.guard.clone();
                    g_else.push(pred_false.clone());
                    self.emit_with_guard(OpCode::Assign { dest: phi.clone(), src: e_op }, g_else);
                    self.env.insert(name, EnvEntry::Value(Lowered::Op(Operand::var(phi))));
                }
                (Some(entry), None) | (None, Some(entry))
                    // declared in one branch only (e.g. objects or templates);
                    // keep it if it did not exist before, otherwise keep base.
                    if base.is_none() => {
                        self.env.insert(name, entry.clone());
                    }
                (Some(EnvEntry::Template(t)), Some(EnvEntry::Template(_))) => {
                    self.env.insert(name, EnvEntry::Template(t.clone()));
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn lower_for(&mut self, var: &str, iter: &Expr, body: &[Stmt]) -> Result<(), FrontendError> {
        let values: Vec<i64> = match iter.as_named_call() {
            Some(("range", args, _)) => {
                let consts: Option<Vec<i64>> =
                    args.iter().map(|a| self.lower_expr(a).ok()?.const_int()).collect();
                let consts =
                    consts.ok_or(FrontendError::NonConstantLoop { var: var.to_string() })?;
                match consts.as_slice() {
                    [stop] => (0..*stop).collect(),
                    [start, stop] => (*start..*stop).collect(),
                    [start, stop, step] if *step > 0 => {
                        (*start..*stop).step_by(*step as usize).collect()
                    }
                    _ => {
                        return Err(FrontendError::BadArguments {
                            callee: "range".into(),
                            reason: "expected 1-3 constant arguments".into(),
                        })
                    }
                }
            }
            _ => {
                // allow iterating a compile-time list of constants
                match self.lower_expr(iter)? {
                    Lowered::List(items) => {
                        let consts: Option<Vec<i64>> =
                            items.iter().map(Lowered::const_int).collect();
                        consts.ok_or(FrontendError::NonConstantLoop { var: var.to_string() })?
                    }
                    _ => return Err(FrontendError::NonConstantLoop { var: var.to_string() }),
                }
            }
        };
        self.unrolled += values.len();
        if self.unrolled > self.opts.max_unroll {
            return Err(FrontendError::Unsupported(format!(
                "loop unrolling exceeds the {} iteration budget",
                self.opts.max_unroll
            )));
        }
        for v in values {
            self.set_value(var, Lowered::Const(v));
            self.lower_block(body)?;
        }
        Ok(())
    }

    // ---- expressions ---------------------------------------------------------

    fn lower_expr(&mut self, expr: &Expr) -> Result<Lowered, FrontendError> {
        match expr {
            Expr::Int(v) => Ok(Lowered::Const(*v)),
            Expr::Float(v) => Ok(Lowered::ConstF(*v)),
            Expr::Str(s) => Ok(Lowered::Str(s.clone())),
            Expr::Bool(b) => Ok(Lowered::Const(i64::from(*b))),
            Expr::NoneLit => Ok(Lowered::NoneVal),
            Expr::Name(name) => match self.lookup(name) {
                Some(EnvEntry::Value(v)) => Ok(v.clone()),
                Some(EnvEntry::Template(_)) => Err(FrontendError::Unsupported(format!(
                    "template instance `{name}` can only be called"
                ))),
                None => Err(FrontendError::UndefinedName(name.clone())),
            },
            Expr::Attribute { value, attr } => match value.as_ref() {
                Expr::Name(n) if n == "hdr" => Ok(Lowered::Op(self.header_field(attr))),
                Expr::Name(n) if n == "meta" => Ok(Lowered::Op(Operand::Meta(attr.clone()))),
                _ => Err(FrontendError::Unsupported(format!(
                    "attribute access on `{value:?}` is not supported"
                ))),
            },
            Expr::Index { value, index } => self.lower_index(value, index),
            Expr::BinOp { op, lhs, rhs } => self.lower_binop(*op, lhs, rhs),
            Expr::Unary { op, operand } => self.lower_unary(*op, operand),
            Expr::Compare { op, lhs, rhs } => self.lower_compare(*op, lhs, rhs),
            Expr::BoolChain { op, values } => self.lower_boolchain(*op, values),
            Expr::List(items) => {
                let lowered: Result<Vec<Lowered>, _> =
                    items.iter().map(|e| self.lower_expr(e)).collect();
                Ok(Lowered::List(lowered?))
            }
            Expr::Dict(_) => Err(FrontendError::Unsupported(
                "dict literals are only allowed as header updates in back()/mirror()".into(),
            )),
            Expr::Call { func, args, kwargs } => self.lower_call(func, args, kwargs),
        }
    }

    fn lower_index(&mut self, value: &Expr, index: &Expr) -> Result<Lowered, FrontendError> {
        // hdr.field[i] with constant i flattens to the scalar field `field_i`
        if let Expr::Attribute { value: base, attr } = value {
            if matches!(base.as_ref(), Expr::Name(n) if n == "hdr") {
                let idx = self.lower_expr(index)?.const_int().ok_or_else(|| {
                    FrontendError::Unsupported(
                        "header vector indices must be compile-time constants".into(),
                    )
                })?;
                return Ok(Lowered::Op(self.header_field(&format!("{attr}_{idx}"))));
            }
        }
        // list[i] with constant i
        let base = self.lower_expr(value)?;
        if let Lowered::List(items) = base {
            let idx = self.lower_expr(index)?.const_int().ok_or_else(|| {
                FrontendError::Unsupported("list indices must be compile-time constants".into())
            })?;
            return items.get(idx as usize).cloned().ok_or_else(|| {
                FrontendError::Unsupported(format!("list index {idx} out of range"))
            });
        }
        Err(FrontendError::Unsupported("indexing is only supported on hdr fields and lists".into()))
    }

    fn lower_binop(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Lowered, FrontendError> {
        let l = self.lower_expr(lhs)?;
        let r = self.lower_expr(rhs)?;
        // constant folding
        if let (Some(a), Some(b)) = (l.const_int(), r.const_int()) {
            if !l.is_float() && !r.is_float() {
                if let Some(folded) = fold_int(op, a, b) {
                    return Ok(Lowered::Const(folded));
                }
            }
        }
        let alu = match op {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div | BinOp::FloorDiv => AluOp::Div,
            BinOp::Mod => AluOp::Mod,
            BinOp::BitAnd => AluOp::And,
            BinOp::BitOr => AluOp::Or,
            BinOp::BitXor => AluOp::Xor,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => AluOp::Shr,
            BinOp::Pow => {
                return Err(FrontendError::Unsupported(
                    "`**` requires compile-time constant operands".into(),
                ))
            }
        };
        let float = l.is_float() || r.is_float();
        let dest = self.fresh_tmp();
        self.emit(OpCode::Alu {
            dest: dest.clone(),
            op: alu,
            lhs: l.to_operand()?,
            rhs: r.to_operand()?,
            float,
        });
        Ok(Lowered::Op(Operand::var(dest)))
    }

    fn lower_unary(&mut self, op: UnaryOp, operand: &Expr) -> Result<Lowered, FrontendError> {
        let v = self.lower_expr(operand)?;
        if let Some(c) = v.const_int() {
            return Ok(Lowered::Const(match op {
                UnaryOp::Neg => -c,
                UnaryOp::Invert => !c,
                UnaryOp::Not => i64::from(c == 0),
            }));
        }
        let dest = self.fresh_tmp();
        match op {
            UnaryOp::Neg => self.emit(OpCode::Alu {
                dest: dest.clone(),
                op: AluOp::Sub,
                lhs: Operand::int(0),
                rhs: v.to_operand()?,
                float: v.is_float(),
            }),
            UnaryOp::Invert => self.emit(OpCode::Alu {
                dest: dest.clone(),
                op: AluOp::Xor,
                lhs: v.to_operand()?,
                rhs: Operand::int(-1),
                float: false,
            }),
            UnaryOp::Not => self.emit(OpCode::Cmp {
                dest: dest.clone(),
                op: CmpOp::Eq,
                lhs: v.to_operand()?,
                rhs: Operand::int(0),
            }),
        }
        Ok(Lowered::Op(Operand::var(dest)))
    }

    fn lower_compare(
        &mut self,
        op: clickinc_lang::ast::CmpOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<Lowered, FrontendError> {
        let l = self.lower_expr(lhs)?;
        let r = self.lower_expr(rhs)?;
        let ir_op = match op {
            clickinc_lang::ast::CmpOp::Eq => CmpOp::Eq,
            clickinc_lang::ast::CmpOp::Ne => CmpOp::Ne,
            clickinc_lang::ast::CmpOp::Lt => CmpOp::Lt,
            clickinc_lang::ast::CmpOp::Le => CmpOp::Le,
            clickinc_lang::ast::CmpOp::Gt => CmpOp::Gt,
            clickinc_lang::ast::CmpOp::Ge => CmpOp::Ge,
        };
        if let (Some(a), Some(b)) = (l.const_int(), r.const_int()) {
            return Ok(Lowered::Const(i64::from(ir_op.eval_int(a, b))));
        }
        let dest = self.fresh_tmp();
        self.emit(OpCode::Cmp {
            dest: dest.clone(),
            op: ir_op,
            lhs: l.to_operand()?,
            rhs: r.to_operand()?,
        });
        Ok(Lowered::Op(Operand::var(dest)))
    }

    fn lower_boolchain(&mut self, op: BoolOp, values: &[Expr]) -> Result<Lowered, FrontendError> {
        let alu = match op {
            BoolOp::And => AluOp::And,
            BoolOp::Or => AluOp::Or,
        };
        let mut acc: Option<Lowered> = None;
        for value in values {
            let v = self.lower_expr(value)?;
            acc = Some(match acc {
                None => v,
                Some(prev) => {
                    if let (Some(a), Some(b)) = (prev.const_int(), v.const_int()) {
                        let folded = match op {
                            BoolOp::And => i64::from(a != 0 && b != 0),
                            BoolOp::Or => i64::from(a != 0 || b != 0),
                        };
                        Lowered::Const(folded)
                    } else {
                        let dest = self.fresh_tmp();
                        self.emit(OpCode::Alu {
                            dest: dest.clone(),
                            op: alu,
                            lhs: prev.to_operand()?,
                            rhs: v.to_operand()?,
                            float: false,
                        });
                        Lowered::Op(Operand::var(dest))
                    }
                }
            });
        }
        Ok(acc.unwrap_or(Lowered::Const(1)))
    }

    // ---- calls ---------------------------------------------------------------

    fn lower_call(
        &mut self,
        func: &Expr,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> Result<Lowered, FrontendError> {
        // method-style calls: list.append(x)
        if let Expr::Attribute { value, attr } = func {
            if let Expr::Name(obj) = value.as_ref() {
                if attr == "append" {
                    return self.lower_list_append(obj, args);
                }
                if attr == "read" || attr == "get" {
                    // obj.read(index) sugar for get(obj, index)
                    let mut full = vec![Expr::Name(obj.clone())];
                    full.extend_from_slice(args);
                    return self.lower_primitive(PrimitiveKind::Get, &full, kwargs);
                }
            }
            return Err(FrontendError::Unsupported(format!(
                "method call `{attr}` is not supported"
            )));
        }

        let name = match func {
            Expr::Name(n) => n.clone(),
            _ => return Err(FrontendError::Unsupported("indirect calls are not supported".into())),
        };

        // template instance invocation, e.g. `agg(hdr)`
        if let Some(EnvEntry::Template(inst)) = self.lookup(&name).cloned() {
            return self.expand_template(&name, &inst);
        }

        // user-defined function inlining
        if let Some((params, body)) = self.funcs.get(&name).cloned() {
            return self.inline_function(&name, &params, &body, args);
        }

        // float intrinsics used by templates targeting FPGA/NFP devices
        if let Some(alu) = match name.as_str() {
            "fadd" => Some(AluOp::Add),
            "fsub" => Some(AluOp::Sub),
            "fmul" => Some(AluOp::Mul),
            "fdiv" => Some(AluOp::Div),
            _ => None,
        } {
            if args.len() != 2 {
                return Err(FrontendError::BadArguments {
                    callee: name,
                    reason: "expected exactly two arguments".into(),
                });
            }
            let l = self.lower_expr(&args[0])?.to_operand()?;
            let r = self.lower_expr(&args[1])?.to_operand()?;
            let dest = self.fresh_tmp();
            self.emit(OpCode::Alu { dest: dest.clone(), op: alu, lhs: l, rhs: r, float: true });
            return Ok(Lowered::Op(Operand::var(dest)));
        }

        if let Some(prim) = PrimitiveKind::from_name(&name) {
            return self.lower_primitive(prim, args, kwargs);
        }
        if let Some(builtin) = BuiltinFn::from_name(&name) {
            return self.lower_builtin(builtin, &name, args);
        }
        Err(FrontendError::UnknownCall(name))
    }

    fn lower_list_append(&mut self, list: &str, args: &[Expr]) -> Result<Lowered, FrontendError> {
        let value = match args {
            [one] => self.lower_expr(one)?,
            _ => {
                return Err(FrontendError::BadArguments {
                    callee: "append".into(),
                    reason: "expected exactly one argument".into(),
                })
            }
        };
        match self.env.get_mut(list) {
            Some(EnvEntry::Value(Lowered::List(items))) => {
                items.push(value);
                Ok(Lowered::NoneVal)
            }
            _ => Err(FrontendError::BadObjectUse {
                object: list.to_string(),
                reason: "append() is only valid on list() values".into(),
            }),
        }
    }

    fn expand_template(
        &mut self,
        instance_name: &str,
        inst: &TemplateInstance,
    ) -> Result<Lowered, FrontendError> {
        let get = |k: &str, d: i64| inst.kwargs.get(k).copied().unwrap_or(d);
        let source = match inst.template.as_str() {
            "MLAgg" => {
                let params = MlAggParams {
                    num_aggregators: get("row", 5000) as u32,
                    dims: get("dim", 24) as u32,
                    num_workers: get("workers", 4) as u32,
                    is_float: get("is_convert", 0) != 0 || get("is_float", 0) != 0,
                };
                mlagg_template(instance_name, params).source
            }
            "KVS" => {
                let params = clickinc_lang::templates::KvsParams {
                    cache_depth: get("depth", 5000) as u32,
                    ..Default::default()
                };
                clickinc_lang::templates::kvs_template(instance_name, params).source
            }
            "DQAcc" => {
                let params = clickinc_lang::templates::DqAccParams {
                    depth: get("depth", 5000) as u32,
                    ways: get("ways", 8) as u32,
                };
                clickinc_lang::templates::dqacc_template(instance_name, params).source
            }
            other => {
                return Err(FrontendError::UnknownCall(format!("template `{other}`")));
            }
        };
        let ast = clickinc_lang::parse(&source)?;
        self.lower_block(&ast.stmts)?;
        Ok(Lowered::NoneVal)
    }

    fn inline_function(
        &mut self,
        name: &str,
        params: &[String],
        body: &[Stmt],
        args: &[Expr],
    ) -> Result<Lowered, FrontendError> {
        if params.len() != args.len() {
            return Err(FrontendError::BadArguments {
                callee: name.to_string(),
                reason: format!("expected {} arguments, got {}", params.len(), args.len()),
            });
        }
        let lowered_args: Result<Vec<Lowered>, _> =
            args.iter().map(|a| self.lower_expr(a)).collect();
        let lowered_args = lowered_args?;
        // bind parameters in a child scope; restore shadowed names afterwards
        let saved: Vec<(String, Option<EnvEntry>)> =
            params.iter().map(|p| (p.clone(), self.env.get(p).cloned())).collect();
        for (p, v) in params.iter().zip(lowered_args) {
            self.set_value(p, v);
        }
        let slot = format!("$ret{}", self.next_tmp);
        self.next_tmp += 1;
        self.ret_slots.push(slot.clone());
        self.set_value(&slot, Lowered::NoneVal);
        self.lower_block(body)?;
        self.ret_slots.pop();
        let result = match self.lookup(&slot) {
            Some(EnvEntry::Value(v)) => v.clone(),
            _ => Lowered::NoneVal,
        };
        self.env.remove(&slot);
        for (p, old) in saved {
            match old {
                Some(entry) => {
                    self.env.insert(p, entry);
                }
                None => {
                    self.env.remove(&p);
                }
            }
        }
        Ok(result)
    }

    fn lower_primitive(
        &mut self,
        prim: PrimitiveKind,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> Result<Lowered, FrontendError> {
        match prim {
            PrimitiveKind::Drop => {
                self.emit(OpCode::Drop);
                Ok(Lowered::NoneVal)
            }
            PrimitiveKind::Forward => {
                self.emit(OpCode::Forward);
                Ok(Lowered::NoneVal)
            }
            PrimitiveKind::Back | PrimitiveKind::Mirror => {
                let updates = self.lower_header_updates(args, kwargs)?;
                if prim == PrimitiveKind::Back {
                    self.emit(OpCode::Back { updates });
                } else {
                    self.emit(OpCode::Mirror { updates });
                }
                Ok(Lowered::NoneVal)
            }
            PrimitiveKind::Multicast => {
                let group = match args.first() {
                    Some(e) => self.lower_expr(e)?.to_operand()?,
                    None => Operand::int(0),
                };
                self.emit(OpCode::Multicast { group });
                Ok(Lowered::NoneVal)
            }
            PrimitiveKind::CopyTo => {
                let target = match args.first() {
                    Some(Expr::Str(s)) => s.clone(),
                    _ => "CPU".to_string(),
                };
                let values: Result<Vec<Operand>, _> = args
                    .iter()
                    .skip(1)
                    .map(|e| self.lower_expr(e).and_then(|l| l.to_operand()))
                    .collect();
                self.emit(OpCode::CopyTo { target, values: values? });
                Ok(Lowered::NoneVal)
            }
            PrimitiveKind::Get
            | PrimitiveKind::Write
            | PrimitiveKind::Count
            | PrimitiveKind::Clear
            | PrimitiveKind::Del => self.lower_state_primitive(prim, args),
        }
    }

    fn lower_header_updates(
        &mut self,
        args: &[Expr],
        kwargs: &[(String, Expr)],
    ) -> Result<Vec<(String, Operand)>, FrontendError> {
        let mut dict_expr: Option<&Expr> = None;
        for (k, v) in kwargs {
            if k == "hdr" {
                dict_expr = Some(v);
            }
        }
        if dict_expr.is_none() {
            if let Some(first) = args.first() {
                if matches!(first, Expr::Dict(_)) {
                    dict_expr = Some(first);
                }
            }
        }
        let mut updates = Vec::new();
        if let Some(Expr::Dict(pairs)) = dict_expr {
            for (k, v) in pairs {
                let field = match k {
                    Expr::Name(n) => n.clone(),
                    Expr::Str(s) => s.clone(),
                    other => {
                        return Err(FrontendError::BadArguments {
                            callee: "back/mirror".into(),
                            reason: format!("header update keys must be names, got {other:?}"),
                        })
                    }
                };
                let value = self.lower_expr(v)?.to_operand()?;
                self.header_field(&field);
                updates.push((field, value));
            }
        }
        Ok(updates)
    }

    fn lower_state_primitive(
        &mut self,
        prim: PrimitiveKind,
        args: &[Expr],
    ) -> Result<Lowered, FrontendError> {
        // `del(hdr.feat[i])` removes a header field (sparse-gradient use case)
        if prim == PrimitiveKind::Del {
            if let Some(first) = args.first() {
                if let Some(field) = self.header_target_field(first)? {
                    self.header_field(&field);
                    self.emit(OpCode::SetHeader { field, value: Operand::Const(Value::None) });
                    return Ok(Lowered::NoneVal);
                }
            }
        }
        let object = match args.first() {
            Some(e) => match self.lower_expr(e)? {
                Lowered::Object(name) => name,
                other => {
                    return Err(FrontendError::BadArguments {
                        callee: format!("{prim:?}"),
                        reason: format!("first argument must be an object, got {other:?}"),
                    })
                }
            },
            None => {
                return Err(FrontendError::BadArguments {
                    callee: format!("{prim:?}"),
                    reason: "missing object argument".into(),
                })
            }
        };
        let rest: Result<Vec<Operand>, _> =
            args.iter().skip(1).map(|e| self.lower_expr(e).and_then(|l| l.to_operand())).collect();
        let rest = rest?;
        let is_hash = matches!(self.object_kind(&object), Some(ObjectKind::Hash { .. }));
        match prim {
            PrimitiveKind::Get => {
                let dest = self.fresh_tmp();
                if is_hash {
                    self.emit(OpCode::Hash { dest: dest.clone(), object, keys: rest });
                } else {
                    self.emit(OpCode::ReadState { dest: dest.clone(), object, index: rest });
                }
                Ok(Lowered::Op(Operand::var(dest)))
            }
            PrimitiveKind::Write => {
                if rest.is_empty() {
                    return Err(FrontendError::BadArguments {
                        callee: "write".into(),
                        reason: "expected an index/key and a value".into(),
                    });
                }
                let (index, value) = rest.split_at(rest.len() - 1);
                self.emit(OpCode::WriteState {
                    object,
                    index: index.to_vec(),
                    value: value.to_vec(),
                });
                Ok(Lowered::NoneVal)
            }
            PrimitiveKind::Count => {
                let (index, delta) = match rest.split_last() {
                    Some((delta, index)) => (index.to_vec(), delta.clone()),
                    None => (Vec::new(), Operand::int(1)),
                };
                let dest = self.fresh_tmp();
                self.emit(OpCode::CountState { dest: Some(dest.clone()), object, index, delta });
                Ok(Lowered::Op(Operand::var(dest)))
            }
            PrimitiveKind::Clear => {
                self.emit(OpCode::ClearState { object });
                Ok(Lowered::NoneVal)
            }
            PrimitiveKind::Del => {
                self.emit(OpCode::DeleteState { object, index: rest });
                Ok(Lowered::NoneVal)
            }
            _ => unreachable!("non-state primitive dispatched to lower_state_primitive"),
        }
    }

    fn lower_builtin(
        &mut self,
        builtin: BuiltinFn,
        name: &str,
        args: &[Expr],
    ) -> Result<Lowered, FrontendError> {
        let lowered: Result<Vec<Lowered>, _> = args.iter().map(|a| self.lower_expr(a)).collect();
        let mut lowered = lowered?;
        // single list argument expands to its elements for reductions
        if lowered.len() == 1 {
            if let Lowered::List(items) = &lowered[0] {
                if matches!(
                    builtin,
                    BuiltinFn::Min | BuiltinFn::Max | BuiltinFn::Sum | BuiltinFn::Len
                ) {
                    lowered = items.clone();
                    if matches!(builtin, BuiltinFn::Len) {
                        return Ok(Lowered::Const(lowered.len() as i64));
                    }
                }
            }
        }
        match builtin {
            BuiltinFn::Min | BuiltinFn::Max | BuiltinFn::Sum => {
                let alu = match builtin {
                    BuiltinFn::Min => AluOp::Min,
                    BuiltinFn::Max => AluOp::Max,
                    _ => AluOp::Add,
                };
                self.fold_reduction(name, alu, lowered)
            }
            BuiltinFn::Abs => match lowered.first() {
                Some(v) => {
                    if let Some(c) = v.const_int() {
                        return Ok(Lowered::Const(c.abs()));
                    }
                    let op = v.to_operand()?;
                    let neg = self.fresh_tmp();
                    self.emit(OpCode::Alu {
                        dest: neg.clone(),
                        op: AluOp::Sub,
                        lhs: Operand::int(0),
                        rhs: op.clone(),
                        float: false,
                    });
                    let dest = self.fresh_tmp();
                    self.emit(OpCode::Alu {
                        dest: dest.clone(),
                        op: AluOp::Max,
                        lhs: op,
                        rhs: Operand::var(neg),
                        float: false,
                    });
                    Ok(Lowered::Op(Operand::var(dest)))
                }
                None => Err(FrontendError::BadArguments {
                    callee: name.to_string(),
                    reason: "expected one argument".into(),
                }),
            },
            BuiltinFn::Len => match lowered.first() {
                Some(Lowered::List(items)) => Ok(Lowered::Const(items.len() as i64)),
                _ => Err(FrontendError::BadArguments {
                    callee: name.to_string(),
                    reason: "len() requires a list".into(),
                }),
            },
            BuiltinFn::Pow => {
                let a = lowered.first().and_then(Lowered::const_int);
                let b = lowered.get(1).and_then(Lowered::const_int);
                match (a, b) {
                    (Some(a), Some(b)) if b >= 0 => Ok(Lowered::Const(a.pow(b.min(62) as u32))),
                    _ => Err(FrontendError::Unsupported(
                        "pow() requires compile-time constant arguments".into(),
                    )),
                }
            }
            BuiltinFn::Round | BuiltinFn::Ceil | BuiltinFn::Floor => match lowered.first() {
                Some(Lowered::ConstF(v)) => Ok(Lowered::Const(match builtin {
                    BuiltinFn::Ceil => v.ceil() as i64,
                    BuiltinFn::Floor => v.floor() as i64,
                    _ => v.round() as i64,
                })),
                Some(v) => Ok(v.clone()),
                None => Err(FrontendError::BadArguments {
                    callee: name.to_string(),
                    reason: "expected one argument".into(),
                }),
            },
            BuiltinFn::Sqrt => match lowered.first().and_then(Lowered::const_int) {
                Some(v) if v >= 0 => Ok(Lowered::Const((v as f64).sqrt() as i64)),
                _ => Err(FrontendError::Unsupported(
                    "sqrt() requires a non-negative compile-time constant".into(),
                )),
            },
            BuiltinFn::RandInt => {
                let bound = match lowered.first() {
                    Some(v) => v.to_operand()?,
                    None => Operand::int(i64::MAX),
                };
                let dest = self.fresh_tmp();
                self.emit(OpCode::RandInt { dest: dest.clone(), bound });
                Ok(Lowered::Op(Operand::var(dest)))
            }
            BuiltinFn::Slice => {
                let value = lowered
                    .first()
                    .ok_or_else(|| FrontendError::BadArguments {
                        callee: name.to_string(),
                        reason: "expected slice(value, hi, lo)".into(),
                    })?
                    .to_operand()?;
                let hi = lowered.get(1).and_then(Lowered::const_int).unwrap_or(31);
                let lo = lowered.get(2).and_then(Lowered::const_int).unwrap_or(0);
                let dest = self.fresh_tmp();
                self.emit(OpCode::Alu {
                    dest: dest.clone(),
                    op: AluOp::Slice,
                    lhs: value,
                    rhs: Operand::int((hi << 8) | lo),
                    float: false,
                });
                Ok(Lowered::Op(Operand::var(dest)))
            }
            BuiltinFn::List => Ok(Lowered::List(lowered)),
            BuiltinFn::Dict => Err(FrontendError::Unsupported(
                "dict() values are not supported on the data plane".into(),
            )),
            BuiltinFn::Range => Err(FrontendError::Unsupported(
                "range() is only valid as a `for` loop iterator".into(),
            )),
        }
    }

    fn fold_reduction(
        &mut self,
        name: &str,
        alu: AluOp,
        items: Vec<Lowered>,
    ) -> Result<Lowered, FrontendError> {
        if items.is_empty() {
            return Err(FrontendError::BadArguments {
                callee: name.to_string(),
                reason: "reduction over an empty sequence".into(),
            });
        }
        let mut acc = items[0].clone();
        for item in &items[1..] {
            if let (Some(a), Some(b)) = (acc.const_int(), item.const_int()) {
                let folded = match alu {
                    AluOp::Min => a.min(b),
                    AluOp::Max => a.max(b),
                    _ => a + b,
                };
                acc = Lowered::Const(folded);
                continue;
            }
            let dest = self.fresh_tmp();
            self.emit(OpCode::Alu {
                dest: dest.clone(),
                op: alu,
                lhs: acc.to_operand()?,
                rhs: item.to_operand()?,
                float: false,
            });
            acc = Lowered::Op(Operand::var(dest));
        }
        Ok(acc)
    }
}

fn fold_int(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.checked_add(b)?,
        BinOp::Sub => a.checked_sub(b)?,
        BinOp::Mul => a.checked_mul(b)?,
        BinOp::Div | BinOp::FloorDiv => a.checked_div(b)?,
        BinOp::Mod => a.checked_rem(b)?,
        BinOp::Pow => a.checked_pow(u32::try_from(b).ok()?)?,
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.checked_shl(u32::try_from(b).ok()?)?,
        BinOp::Shr => a.checked_shr(u32::try_from(b).ok()?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_ir::CapabilityClass;
    use clickinc_lang::templates::{
        count_min_sketch, dqacc_template, kvs_template, mlagg_sparse_user, DqAccParams, KvsParams,
    };

    fn compile(src: &str) -> IrProgram {
        Frontend::new().compile_source("test", src, &CompileOptions::default()).expect("compiles")
    }

    #[test]
    fn straight_line_constant_folding() {
        let ir = compile("x = 2 * 3 + 4\ny = x + hdr.seq\nforward()\n");
        // x folds away; only the y ALU and the forward remain
        assert_eq!(ir.len(), 2);
        match &ir.instructions[0].op {
            OpCode::Alu { lhs, .. } => assert_eq!(*lhs, Operand::int(10)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(ir.validate().is_ok());
    }

    #[test]
    fn if_conversion_produces_guarded_instructions_and_phi() {
        let ir =
            compile("x = 0\nif hdr.op == 1:\n    x = 5\nelse:\n    x = 7\ny = x + 1\nforward()\n");
        assert!(ir.validate().is_ok());
        // there must be at least: cmp, two guarded phi assigns, the add, forward
        let guarded = ir.instructions.iter().filter(|i| i.guard.is_some()).count();
        assert!(guarded >= 2, "expected phi copies to be guarded, got {}", ir.dump());
        // and the add must read the phi variable, not the constant
        let add = ir
            .instructions
            .iter()
            .find(|i| matches!(&i.op, OpCode::Alu { op: AluOp::Add, .. }))
            .expect("add present");
        match &add.op {
            OpCode::Alu { lhs, .. } => assert!(matches!(lhs, Operand::Var(_))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn nested_ifs_conjoin_guards() {
        let ir = compile("if hdr.a == 1:\n    if hdr.b == 2:\n        drop()\nforward()\n");
        let drop =
            ir.instructions.iter().find(|i| matches!(i.op, OpCode::Drop)).expect("drop present");
        assert_eq!(drop.guard.as_ref().unwrap().all.len(), 2, "{}", ir.dump());
    }

    #[test]
    fn constant_out_of_bounds_index_is_rejected_at_lower_time() {
        // cell 9 on a size-4 array would silently wrap in the emulator; the
        // frontend must refuse the program before it can reach the service
        let err = Frontend::new()
            .compile_source(
                "oob",
                "ctr = Array(row=1, size=4, w=32)\ncount(ctr, 9, 1)\nforward()\n",
                &CompileOptions::default(),
            )
            .expect_err("constant out-of-bounds index must not compile");
        match err {
            FrontendError::BadObjectUse { object, reason } => {
                assert_eq!(object, "ctr");
                assert!(reason.contains("out of bounds"), "{reason}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // an in-bounds constant on the same geometry stays fine
        compile("ctr = Array(row=1, size=4, w=32)\ncount(ctr, 3, 1)\nforward()\n");
    }

    #[test]
    fn constant_condition_prunes_the_untaken_branch() {
        let ir = compile("FLAG = 0\nif FLAG == 1:\n    drop()\nelse:\n    forward()\n");
        assert!(ir.instructions.iter().all(|i| !matches!(i.op, OpCode::Drop)));
        assert_eq!(ir.len(), 1);
    }

    #[test]
    fn loops_unroll_with_constant_bounds() {
        let ir = compile(
            "acc = Array(row=1, size=16, w=32)\nfor i in range(4):\n    count(acc, i, 1)\nforward()\n",
        );
        let counts =
            ir.instructions.iter().filter(|i| matches!(i.op, OpCode::CountState { .. })).count();
        assert_eq!(counts, 4);
    }

    #[test]
    fn non_constant_loop_bound_is_an_error() {
        let err = Frontend::new()
            .compile_source("p", "for i in range(hdr.n):\n    x = i\n", &CompileOptions::default())
            .unwrap_err();
        assert!(matches!(err, FrontendError::NonConstantLoop { .. }));
    }

    #[test]
    fn undefined_names_are_reported() {
        let err = Frontend::new()
            .compile_source("p", "x = y + 1\n", &CompileOptions::default())
            .unwrap_err();
        assert!(matches!(err, FrontendError::UndefinedName(n) if n == "y"));
    }

    #[test]
    fn unknown_calls_are_reported() {
        let err = Frontend::new()
            .compile_source("p", "x = frobnicate(1)\n", &CompileOptions::default())
            .unwrap_err();
        assert!(matches!(err, FrontendError::UnknownCall(_)));
    }

    #[test]
    fn user_functions_inline() {
        let src = "\
def comp(v1, v2):
    if v1 < v2:
        return v1
    else:
        return v2
a = comp(hdr.x, hdr.y)
hdr.out = a
forward()
";
        let ir = compile(src);
        assert!(ir.validate().is_ok());
        // the comparison and the phi copies got inlined
        assert!(ir.instructions.iter().any(|i| matches!(i.op, OpCode::Cmp { .. })));
        assert!(ir.instructions.iter().any(|i| matches!(i.op, OpCode::SetHeader { .. })));
    }

    #[test]
    fn count_min_sketch_example_compiles_like_fig1() {
        let t = count_min_sketch("cms", 3, 65536);
        let ir =
            Frontend::new().compile_source("cms", &t.source, &CompileOptions::default()).unwrap();
        assert!(ir.validate().is_ok());
        // 3 counts (one per row) folded through min
        let counts =
            ir.instructions.iter().filter(|i| matches!(i.op, OpCode::CountState { .. })).count();
        assert_eq!(counts, 3);
        let mins = ir
            .instructions
            .iter()
            .filter(|i| matches!(&i.op, OpCode::Alu { op: AluOp::Min, .. }))
            .count();
        assert_eq!(mins, 2, "min over a 3-element list folds into 2 Min ops");
        assert!(ir.required_capabilities().contains(&CapabilityClass::Bso));
    }

    #[test]
    fn kvs_template_compiles_and_validates() {
        let t = kvs_template("kvs_0", KvsParams::default());
        let ir =
            Frontend::new().compile_source("kvs_0", &t.source, &CompileOptions::default()).unwrap();
        assert!(ir.validate().is_ok(), "{}", ir.dump());
        let caps = ir.required_capabilities();
        assert!(caps.contains(&CapabilityClass::Bem) || caps.contains(&CapabilityClass::Bsem));
        assert!(caps.contains(&CapabilityClass::Bso));
        assert!(caps.contains(&CapabilityClass::Baf));
        assert!(caps.contains(&CapabilityClass::Bbpf));
        assert_eq!(ir.objects.len(), 5, "cache, hits, cms, bf, hidx");
        assert!(ir.len() > 10 && ir.len() < 80, "KVS IR size = {}", ir.len());
    }

    #[test]
    fn mlagg_template_compiles_with_and_without_floats() {
        let int_t = mlagg_template("mlagg_0", MlAggParams { dims: 8, ..Default::default() });
        let ir = Frontend::new()
            .compile_source("mlagg_0", &int_t.source, &CompileOptions::default())
            .unwrap();
        assert!(ir.validate().is_ok());
        assert!(!ir.required_capabilities().contains(&CapabilityClass::Bca));

        let float_t = mlagg_template(
            "mlagg_f",
            MlAggParams { dims: 8, is_float: true, ..Default::default() },
        );
        let ir_f = Frontend::new()
            .compile_source("mlagg_f", &float_t.source, &CompileOptions::default())
            .unwrap();
        assert!(ir_f.validate().is_ok());
        assert!(ir_f.required_capabilities().contains(&CapabilityClass::Bca));
    }

    #[test]
    fn dqacc_template_compiles() {
        let t = dqacc_template("dqacc_0", DqAccParams { depth: 1000, ways: 4 });
        let ir = Frontend::new()
            .compile_source("dqacc_0", &t.source, &CompileOptions::default())
            .unwrap();
        assert!(ir.validate().is_ok(), "{}", ir.dump());
        assert!(
            !ir.required_capabilities().contains(&CapabilityClass::Bic),
            "the rolling pointer wraps with a mask, so DQAcc stays ASIC-placeable"
        );
        assert!(ir.required_capabilities().contains(&CapabilityClass::Bso));
    }

    #[test]
    fn sparse_mlagg_user_program_expands_the_template() {
        let t = mlagg_sparse_user(
            "sparse_0",
            MlAggParams { dims: 8, num_aggregators: 64, ..Default::default() },
            2,
            4,
        );
        let ir = Frontend::new()
            .compile_source("sparse_0", &t.source, &CompileOptions::default())
            .unwrap();
        assert!(ir.validate().is_ok());
        // the sparse detection writes None into header fields (block deletion)
        assert!(ir.instructions.iter().any(|i| matches!(
            &i.op,
            OpCode::SetHeader { value: Operand::Const(Value::None), .. }
        )));
        // and the MLAgg template body was inlined (aggregator arrays exist)
        assert!(ir.object("agg_data_t").is_some());
        assert!(ir.len() > 40);
    }

    #[test]
    fn back_and_mirror_updates_lower_to_header_rewrites() {
        let ir = compile("REPLY = 2\nif hdr.op == 1:\n    back(hdr={op: REPLY, vals: hdr.vals})\nelse:\n    mirror(hdr={overflow: 1})\nforward()\n");
        let back = ir
            .instructions
            .iter()
            .find(|i| matches!(i.op, OpCode::Back { .. }))
            .expect("back emitted");
        match &back.op {
            OpCode::Back { updates } => {
                assert_eq!(updates.len(), 2);
                assert_eq!(updates[0].0, "op");
                assert_eq!(updates[0].1, Operand::int(2));
            }
            _ => unreachable!(),
        }
        assert!(ir.instructions.iter().any(|i| matches!(i.op, OpCode::Mirror { .. })));
    }

    #[test]
    fn del_on_header_field_becomes_none_write() {
        let ir = compile("del(hdr.feat[3])\nforward()\n");
        match &ir.instructions[0].op {
            OpCode::SetHeader { field, value } => {
                assert_eq!(field, "feat_3");
                assert_eq!(*value, Operand::Const(Value::None));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn augmented_assignment_desugars() {
        let ir = compile("x = hdr.a\nx += 1\nhdr.out = x\nforward()\n");
        assert!(ir
            .instructions
            .iter()
            .any(|i| matches!(&i.op, OpCode::Alu { op: AluOp::Add, .. })));
        assert!(ir.validate().is_ok());
    }

    #[test]
    fn loop_budget_is_enforced() {
        let opts = CompileOptions { max_unroll: 10, ..Default::default() };
        let err = Frontend::new()
            .compile_source("p", "for i in range(100):\n    hdr.x = i\n", &opts)
            .unwrap_err();
        assert!(matches!(err, FrontendError::Unsupported(_)));
    }

    #[test]
    fn boolean_chains_combine_conditions() {
        let ir = compile("if hdr.a == 1 and hdr.b == 2:\n    drop()\nforward()\n");
        // two cmps and one AND
        assert!(ir
            .instructions
            .iter()
            .any(|i| matches!(&i.op, OpCode::Alu { op: AluOp::And, .. })));
        let drop = ir.instructions.iter().find(|i| matches!(i.op, OpCode::Drop)).unwrap();
        assert_eq!(drop.guard.as_ref().unwrap().all.len(), 1);
    }

    #[test]
    fn ssa_no_duplicate_unconditional_writes() {
        // re-assignments create new versions / rebind, so validation's SSA check passes
        let ir = compile("x = hdr.a\nx = x + 1\nx = x + 2\nhdr.out = x\nforward()\n");
        assert!(ir.validate().is_ok());
    }
}
