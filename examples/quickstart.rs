//! Quickstart: write a ClickINC program, deploy it with the controller, and
//! inspect what the toolchain produced.
//!
//! Run with: `cargo run --example quickstart`

use clickinc::topology::Topology;
use clickinc::{Controller, ServiceRequest};

fn main() {
    // The count-min-sketch module program of the paper's Fig. 1, written in the
    // Python-style ClickINC language.
    let source = "\
mem = Sketch(type=\"count-min\", rows=3, cols=65536, w=32)
vals = list()
for i in range(3):
    vals.append(count(mem, hdr.key, 1))
relt = min(vals)
hdr.estimate = relt
forward()
";
    println!("=== ClickINC quickstart ===\n");
    println!("user program ({} LoC):\n{source}", clickinc::lang::lines_of_code(source));

    // Manage the paper's Fig. 11 emulation topology.
    let topology = Topology::emulation_topology();
    let mut controller = Controller::new(topology);

    // Deploy the program for traffic from pod0(a) to pod2(b).
    let request = ServiceRequest::new("heavyhitter_0", source, &["pod0a"], "pod2b");
    let deployment = controller.deploy(request).expect("deployment succeeds").clone();

    println!("compiled to {} IR instructions", deployment.program.len());
    println!("grouped into {} blocks", deployment.dag.len());
    println!(
        "placement gain: {:.4} (solve time {:.2?})",
        deployment.plan.gain, deployment.plan.solve_time
    );
    for assignment in deployment.plan.assignments.iter().filter(|a| !a.is_empty()) {
        println!(
            "  -> {}: {} instructions in {} pipeline stages (steps {}..{})",
            assignment.device,
            assignment.instrs.len(),
            assignment.stages_used,
            assignment.step_range.0,
            assignment.step_range.1,
        );
    }
    println!("\ngenerated device programs:");
    for (node, program) in &deployment.device_programs {
        println!(
            "  {} ({}): {} lines of {}",
            controller.topology().node(*node).name,
            controller.topology().node(*node).kind,
            program.lines_of_code(),
            program.language
        );
    }
    println!(
        "\nremaining network resources: {:.1}%",
        controller.remaining_resource_ratio() * 100.0
    );
}
