//! Tokenizer with Python-style significant indentation.
//!
//! The lexer converts raw source into a token stream with explicit `Newline`,
//! `Indent` and `Dedent` tokens, following the same strategy CPython uses: a
//! stack of indentation widths, one `Indent` pushed per deeper block, one
//! `Dedent` per popped level.  Blank lines and comment-only lines produce no
//! tokens.  Brackets suppress newlines so call arguments may span lines.

use crate::error::{LangError, Span};
use crate::token::{Token, TokenKind};

/// The ClickINC lexer.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
    indent_stack: Vec<usize>,
    bracket_depth: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `source`.
    pub fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            indent_stack: vec![0],
            bracket_depth: 0,
            tokens: Vec::new(),
        }
    }

    /// Tokenize the whole input.
    pub fn tokenize(mut self) -> Result<Vec<Token>, LangError> {
        loop {
            if self.at_line_start() && self.bracket_depth == 0 {
                self.handle_indentation()?;
            }
            if self.pos >= self.src.len() {
                break;
            }
            let ch = self.peek();
            match ch {
                b'\n' => {
                    self.advance();
                    if self.bracket_depth == 0 {
                        // collapse consecutive newlines
                        if !matches!(
                            self.tokens.last().map(|t| &t.kind),
                            Some(TokenKind::Newline) | Some(TokenKind::Indent) | None
                        ) {
                            self.push(TokenKind::Newline);
                        }
                    }
                    self.line += 1;
                    self.col = 1;
                }
                b' ' | b'\t' | b'\r' => {
                    self.advance();
                }
                b'#' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.advance();
                    }
                }
                b'"' | b'\'' => self.lex_string(ch)?,
                b'0'..=b'9' => self.lex_number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(),
                _ => self.lex_operator()?,
            }
        }
        // final newline + dedents
        if !matches!(
            self.tokens.last().map(|t| &t.kind),
            Some(TokenKind::Newline) | Some(TokenKind::Dedent) | None
        ) {
            self.push(TokenKind::Newline);
        }
        while self.indent_stack.len() > 1 {
            self.indent_stack.pop();
            self.push(TokenKind::Dedent);
        }
        self.push(TokenKind::Eof);
        Ok(self.tokens)
    }

    fn at_line_start(&self) -> bool {
        self.col == 1
    }

    fn handle_indentation(&mut self) -> Result<(), LangError> {
        // Measure leading whitespace of the next non-blank, non-comment line.
        loop {
            let line_start = self.pos;
            let mut width = 0usize;
            let mut p = self.pos;
            while p < self.src.len() && (self.src[p] == b' ' || self.src[p] == b'\t') {
                width += if self.src[p] == b'\t' { 4 } else { 1 };
                p += 1;
            }
            if p >= self.src.len() {
                self.pos = p;
                self.col += p - line_start;
                return Ok(());
            }
            match self.src[p] {
                b'\n' => {
                    // blank line: skip entirely
                    self.pos = p + 1;
                    self.line += 1;
                    self.col = 1;
                    continue;
                }
                b'#' => {
                    // comment-only line: skip to end of line
                    while p < self.src.len() && self.src[p] != b'\n' {
                        p += 1;
                    }
                    self.pos = if p < self.src.len() { p + 1 } else { p };
                    if p < self.src.len() {
                        self.line += 1;
                    }
                    self.col = 1;
                    continue;
                }
                _ => {
                    self.pos = p;
                    self.col = width + 1;
                    let current = *self.indent_stack.last().expect("non-empty indent stack");
                    if width > current {
                        self.indent_stack.push(width);
                        self.push(TokenKind::Indent);
                    } else if width < current {
                        while *self.indent_stack.last().expect("non-empty") > width {
                            self.indent_stack.pop();
                            self.push(TokenKind::Dedent);
                        }
                        if *self.indent_stack.last().expect("non-empty") != width {
                            return Err(LangError::BadIndentation {
                                span: Span::new(self.line, 1),
                            });
                        }
                    }
                    return Ok(());
                }
            }
        }
    }

    fn peek(&self) -> u8 {
        self.src[self.pos]
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn advance(&mut self) {
        self.pos += 1;
        self.col += 1;
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn push(&mut self, kind: TokenKind) {
        let span = self.span();
        self.tokens.push(Token::new(kind, span));
    }

    fn lex_string(&mut self, quote: u8) -> Result<(), LangError> {
        let start = self.span();
        self.advance();
        let begin = self.pos;
        while self.pos < self.src.len() && self.peek() != quote && self.peek() != b'\n' {
            self.advance();
        }
        if self.pos >= self.src.len() || self.peek() != quote {
            return Err(LangError::UnterminatedString { span: start });
        }
        let text = String::from_utf8_lossy(&self.src[begin..self.pos]).into_owned();
        self.advance();
        self.tokens.push(Token::new(TokenKind::Str(text), start));
        Ok(())
    }

    fn lex_number(&mut self) {
        let start = self.span();
        let begin = self.pos;
        let mut is_float = false;
        while self.pos < self.src.len() {
            match self.peek() {
                b'0'..=b'9' | b'_' => self.advance(),
                b'x' | b'X' if self.pos == begin + 1 && self.src[begin] == b'0' => self.advance(),
                b'a'..=b'f' | b'A'..=b'F'
                    if self.src[begin] == b'0'
                        && begin + 1 < self.src.len()
                        && (self.src[begin + 1] | 0x20) == b'x' =>
                {
                    self.advance()
                }
                b'.' if !is_float
                    && self.peek_at(1).map(|c| c.is_ascii_digit()).unwrap_or(false) =>
                {
                    is_float = true;
                    self.advance();
                }
                _ => break,
            }
        }
        let text: String = String::from_utf8_lossy(&self.src[begin..self.pos]).replace('_', "");
        let kind = if is_float {
            TokenKind::Float(text.parse().unwrap_or(0.0))
        } else if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
            TokenKind::Int(i64::from_str_radix(hex, 16).unwrap_or(0))
        } else {
            TokenKind::Int(text.parse().unwrap_or(0))
        };
        self.tokens.push(Token::new(kind, start));
    }

    fn lex_ident(&mut self) {
        let start = self.span();
        let begin = self.pos;
        while self.pos < self.src.len()
            && (self.peek().is_ascii_alphanumeric() || self.peek() == b'_')
        {
            self.advance();
        }
        let text = String::from_utf8_lossy(&self.src[begin..self.pos]).into_owned();
        let kind = TokenKind::keyword(&text).unwrap_or(TokenKind::Ident(text));
        self.tokens.push(Token::new(kind, start));
    }

    fn lex_operator(&mut self) -> Result<(), LangError> {
        let start = self.span();
        let ch = self.peek();
        let next = self.peek_at(1);
        let (kind, len) = match (ch, next) {
            (b'*', Some(b'*')) => (TokenKind::StarStar, 2),
            (b'/', Some(b'/')) => (TokenKind::SlashSlash, 2),
            (b'=', Some(b'=')) => (TokenKind::EqEq, 2),
            (b'!', Some(b'=')) => (TokenKind::NotEq, 2),
            (b'<', Some(b'=')) => (TokenKind::Le, 2),
            (b'>', Some(b'=')) => (TokenKind::Ge, 2),
            (b'<', Some(b'<')) => (TokenKind::Shl, 2),
            (b'>', Some(b'>')) => (TokenKind::Shr, 2),
            (b'+', Some(b'=')) => (TokenKind::PlusAssign, 2),
            (b'-', Some(b'=')) => (TokenKind::MinusAssign, 2),
            (b'+', _) => (TokenKind::Plus, 1),
            (b'-', _) => (TokenKind::Minus, 1),
            (b'*', _) => (TokenKind::Star, 1),
            (b'/', _) => (TokenKind::Slash, 1),
            (b'%', _) => (TokenKind::Percent, 1),
            (b'=', _) => (TokenKind::Assign, 1),
            (b'<', _) => (TokenKind::Lt, 1),
            (b'>', _) => (TokenKind::Gt, 1),
            (b'&', _) => (TokenKind::Amp, 1),
            (b'|', _) => (TokenKind::Pipe, 1),
            (b'^', _) => (TokenKind::Caret, 1),
            (b'~', _) => (TokenKind::Tilde, 1),
            (b'(', _) => (TokenKind::LParen, 1),
            (b')', _) => (TokenKind::RParen, 1),
            (b'[', _) => (TokenKind::LBracket, 1),
            (b']', _) => (TokenKind::RBracket, 1),
            (b'{', _) => (TokenKind::LBrace, 1),
            (b'}', _) => (TokenKind::RBrace, 1),
            (b',', _) => (TokenKind::Comma, 1),
            (b':', _) => (TokenKind::Colon, 1),
            (b'.', _) => (TokenKind::Dot, 1),
            _ => {
                return Err(LangError::UnexpectedChar { ch: ch as char, span: start });
            }
        };
        match kind {
            TokenKind::LParen | TokenKind::LBracket | TokenKind::LBrace => self.bracket_depth += 1,
            TokenKind::RParen | TokenKind::RBracket | TokenKind::RBrace => {
                self.bracket_depth = self.bracket_depth.saturating_sub(1)
            }
            _ => {}
        }
        for _ in 0..len {
            self.advance();
        }
        self.tokens.push(Token::new(kind, start));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        let k = kinds("x = 1 + 2\n");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Int(2),
                TokenKind::Newline,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn indentation_produces_indent_dedent() {
        let k = kinds("if x > 0:\n    y = 1\nz = 2\n");
        assert!(k.contains(&TokenKind::Indent));
        assert!(k.contains(&TokenKind::Dedent));
        let indent_pos = k.iter().position(|t| *t == TokenKind::Indent).unwrap();
        let dedent_pos = k.iter().position(|t| *t == TokenKind::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn nested_blocks_close_with_multiple_dedents() {
        let k = kinds("for i in range(3):\n    if i > 0:\n        x = i\n");
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(dedents, 2);
    }

    #[test]
    fn blank_and_comment_lines_do_not_affect_indentation() {
        let k = kinds("if x:\n    a = 1\n\n    # comment\n    b = 2\n");
        let dedents = k.iter().filter(|t| **t == TokenKind::Dedent).count();
        assert_eq!(dedents, 1);
        let indents = k.iter().filter(|t| **t == TokenKind::Indent).count();
        assert_eq!(indents, 1);
    }

    #[test]
    fn newlines_inside_brackets_are_suppressed() {
        let k = kinds("mem = Array(row=3,\n    size=65536,\n    w=32)\n");
        let newlines = k.iter().filter(|t| **t == TokenKind::Newline).count();
        assert_eq!(newlines, 1);
        assert!(!k.contains(&TokenKind::Indent));
    }

    #[test]
    fn strings_numbers_and_hex() {
        let k = kinds("f = Hash(type=\"crc_16\", key=hdr.key)\nn = 0xff\npi = 3.5\n");
        assert!(k.contains(&TokenKind::Str("crc_16".into())));
        assert!(k.contains(&TokenKind::Int(255)));
        assert!(k.contains(&TokenKind::Float(3.5)));
        assert!(k.contains(&TokenKind::Dot));
    }

    #[test]
    fn keywords_and_operators() {
        let k =
            kinds("for i in range(3):\n    vals += 1\n    if a != b and c <= d:\n        drop()\n");
        assert!(k.contains(&TokenKind::For));
        assert!(k.contains(&TokenKind::In));
        assert!(k.contains(&TokenKind::PlusAssign));
        assert!(k.contains(&TokenKind::NotEq));
        assert!(k.contains(&TokenKind::And));
        assert!(k.contains(&TokenKind::Le));
    }

    #[test]
    fn bad_indentation_is_reported() {
        let err = Lexer::new("if x:\n        a = 1\n    b = 2\n").tokenize().unwrap_err();
        assert!(matches!(err, LangError::BadIndentation { .. }));
    }

    #[test]
    fn unterminated_string_is_reported() {
        let err = Lexer::new("s = \"oops\n").tokenize().unwrap_err();
        assert!(matches!(err, LangError::UnterminatedString { .. }));
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = Lexer::new("x = $\n").tokenize().unwrap_err();
        assert!(matches!(err, LangError::UnexpectedChar { ch: '$', .. }));
    }

    #[test]
    fn missing_trailing_newline_is_tolerated() {
        let k = kinds("x = 1");
        assert_eq!(k.last(), Some(&TokenKind::Eof));
        assert!(k.contains(&TokenKind::Newline));
    }

    #[test]
    fn shift_operators_lex_before_comparison() {
        let k = kinds("a = b << 2\nc = d >> 3\n");
        assert!(k.contains(&TokenKind::Shl));
        assert!(k.contains(&TokenKind::Shr));
    }
}
