//! Criterion micro-benchmarks for the hot compiler paths: frontend lowering,
//! block-DAG construction and DP placement.  These complement the table/figure
//! harnesses with statistically robust timings.

use clickinc_blockdag::{build_block_dag, BlockConfig};
use clickinc_frontend::compile_source;
use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc_placement::{place, PlacementConfig, PlacementNetwork, ResourceLedger};
use clickinc_topology::{reduce_for_traffic, Topology};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_frontend(c: &mut Criterion) {
    let kvs = kvs_template("kvs", KvsParams::default()).source;
    let mlagg = mlagg_template("mlagg", MlAggParams::default()).source;
    c.bench_function("frontend/compile_kvs", |b| {
        b.iter(|| compile_source("kvs", black_box(&kvs)).unwrap())
    });
    c.bench_function("frontend/compile_mlagg", |b| {
        b.iter(|| compile_source("mlagg", black_box(&mlagg)).unwrap())
    });
}

fn bench_blockdag(c: &mut Criterion) {
    let ir =
        compile_source("mlagg", &mlagg_template("mlagg", MlAggParams::default()).source).unwrap();
    c.bench_function("blockdag/build_mlagg", |b| {
        b.iter(|| build_block_dag(black_box(&ir), &BlockConfig::default()))
    });
}

fn bench_placement(c: &mut Criterion) {
    let ir = compile_source("kvs", &kvs_template("kvs", KvsParams::default()).source).unwrap();
    let dag = build_block_dag(&ir, &BlockConfig::default());
    let topo = Topology::chain(4, clickinc_device::DeviceKind::Tofino);
    let servers = topo.servers();
    let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
    let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
    c.bench_function("placement/dp_kvs_chain4", |b| {
        b.iter(|| place(black_box(&ir), &dag, &net, &PlacementConfig::default()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_blockdag, bench_placement
}
criterion_main!(benches);
