//! Resource demand of instructions and blocks on a given device.
//!
//! The chip-specific constraint systems of Appendix E boil down, for the
//! purpose of placement, to "how many units of each resource does this piece of
//! the program consume on this device".  This module computes that demand:
//!
//! * compute resources (ALUs, SALUs, hash units, gateway slots, instruction
//!   slots) are charged per instruction;
//! * memory resources (SRAM/TCAM blocks, match-action table slots, FPGA
//!   BRAM/LUT) are charged per *distinct object* referenced by the block, since
//!   an object is materialized once per device regardless of how many
//!   instructions touch it;
//! * PHV bits are charged per distinct temporary variable defined by the block
//!   (those are the values that must be carried between stages / devices).

use crate::model::{Architecture, DeviceKind, DeviceModel};
use clickinc_ir::{
    classify_instruction, CapabilityClass, Instruction, IrProgram, ObjectKind, OpCode, Resource,
    ResourceVector,
};
use std::collections::BTreeSet;

/// SRAM block capacity in bits (Tofino-style 128 kb blocks).
pub(crate) const SRAM_BLOCK_BITS: f64 = 128.0 * 1024.0;
/// TCAM block capacity in bits (44 b × 2048 entries).
pub(crate) const TCAM_BLOCK_BITS: f64 = 44.0 * 2048.0;
/// FPGA BRAM block capacity in bits (36 kb).
pub(crate) const BRAM_BLOCK_BITS: f64 = 36.0 * 1024.0;

/// Demand of a single instruction on `device`, *excluding* object memory
/// (memory is accounted per distinct object by [`block_demand`]).
pub fn instruction_demand(
    device: &DeviceModel,
    program: &IrProgram,
    instr: &Instruction,
) -> ResourceVector {
    let mut v = ResourceVector::zero();
    let class = classify_instruction(instr, &program.objects);
    let rtc = device.arch == Architecture::Rtc;
    let fpga = matches!(device.kind, DeviceKind::FpgaSmartNic | DeviceKind::FpgaAccelerator);
    // LUT/DSP fabric only exists on FPGA devices; charging it elsewhere would
    // spuriously violate the zero capacity of ASIC/NFP models.
    let fab = if fpga { 1.0 } else { 0.0 };

    // every instruction consumes a generic instruction slot (dominant on RTC)
    v[Resource::InstrSlots] += 1.0;

    match &instr.op {
        OpCode::Alu { float, .. } => {
            v[Resource::StatelessAlus] += 1.0;
            if *float || class == CapabilityClass::Bic {
                // complex arithmetic maps to DSPs on FPGAs and extra micro-ops on NFP
                v[Resource::Dsp] += fab * 2.0;
                if rtc {
                    v[Resource::InstrSlots] += 3.0;
                }
            }
            v[Resource::Lut] += fab * 64.0;
        }
        OpCode::Assign { .. } | OpCode::SetHeader { .. } | OpCode::Cmp { .. } => {
            v[Resource::StatelessAlus] += 1.0;
            v[Resource::Lut] += fab * 32.0;
        }
        OpCode::Hash { .. } | OpCode::Checksum { .. } | OpCode::RandInt { .. } => {
            v[Resource::HashUnits] += 1.0;
            v[Resource::Lut] += fab * 256.0;
        }
        OpCode::ReadState { .. }
        | OpCode::WriteState { .. }
        | OpCode::CountState { .. }
        | OpCode::DeleteState { .. }
        | OpCode::ClearState { .. } => {
            // stateful ALU for register-style objects, a table slot for tables
            let is_table = instr
                .object()
                .and_then(|o| program.object(o))
                .map(|o| matches!(o.kind, ObjectKind::Table { .. }))
                .unwrap_or(false);
            if is_table {
                v[Resource::TableSlots] += 1.0;
                v[Resource::HashUnits] += 1.0;
            } else {
                v[Resource::StatefulAlus] += 1.0;
            }
            v[Resource::Lut] += fab * 128.0;
            if rtc {
                v[Resource::InstrSlots] += 2.0;
            }
        }
        OpCode::Crypto { .. } => {
            v[Resource::Dsp] += fab * 8.0;
            v[Resource::Lut] += fab * 4096.0;
            v[Resource::InstrSlots] += 16.0;
        }
        OpCode::Drop | OpCode::Forward | OpCode::NoOp => {
            v[Resource::StatelessAlus] += 0.1;
        }
        OpCode::Back { updates } | OpCode::Mirror { updates } => {
            v[Resource::StatelessAlus] += 1.0 + updates.len() as f64 * 0.5;
            v[Resource::Lut] += fab * 64.0;
        }
        OpCode::Multicast { .. } | OpCode::CopyTo { .. } => {
            v[Resource::StatelessAlus] += 1.0;
            v[Resource::Lut] += fab * 64.0;
        }
    }

    // predication consumes gateway resources (one per guarded instruction,
    // Appendix E.1 "Other Constraints")
    if instr.guard.is_some() {
        v[Resource::GatewaySlots] += 1.0;
    }
    // a defined temporary occupies PHV space so it can flow to later stages
    if instr.dest().is_some() {
        v[Resource::PhvBits] += 32.0;
    }
    v
}

/// Memory demand of one object on `device`.
pub fn object_demand(device: &DeviceModel, kind: &ObjectKind) -> ResourceVector {
    let mut v = ResourceVector::zero();
    let bits = kind.storage_bits() as f64;
    let fpga = matches!(device.kind, DeviceKind::FpgaSmartNic | DeviceKind::FpgaAccelerator);
    let fab = if fpga { 1.0 } else { 0.0 };
    match kind {
        ObjectKind::Table { match_kind, .. } => {
            v[Resource::TableSlots] += 1.0;
            match match_kind {
                clickinc_ir::MatchKind::Ternary | clickinc_ir::MatchKind::Lpm => {
                    v[Resource::TcamBlocks] += (bits / TCAM_BLOCK_BITS).ceil().max(1.0);
                    // ternary tables also need SRAM for the action data
                    v[Resource::SramBlocks] += (bits / (2.0 * SRAM_BLOCK_BITS)).ceil().max(1.0);
                }
                _ => {
                    // exact match keeps ~90% SRAM utilization for hash collisions
                    v[Resource::SramBlocks] += (bits / (0.9 * SRAM_BLOCK_BITS)).ceil().max(1.0);
                    v[Resource::HashUnits] += 1.0;
                }
            }
        }
        ObjectKind::Array { .. } | ObjectKind::Seq { .. } | ObjectKind::Sketch { .. } => {
            v[Resource::SramBlocks] += (bits / SRAM_BLOCK_BITS).ceil().max(1.0);
            v[Resource::StatefulAlus] += match kind {
                ObjectKind::Sketch { rows, .. } => *rows as f64,
                _ => 1.0,
            };
        }
        ObjectKind::Hash { .. } => {
            v[Resource::HashUnits] += 1.0;
        }
        ObjectKind::Crypto { .. } => {
            v[Resource::Lut] += fab * 8192.0;
            v[Resource::Dsp] += fab * 16.0;
        }
    }
    // FPGA devices back the same storage with BRAM
    if fpga {
        v[Resource::Bram] += (bits / BRAM_BLOCK_BITS).ceil();
    }
    v
}

/// Total demand of a set of instructions (a block or a whole snippet) on
/// `device`: per-instruction compute plus per-distinct-object memory.
pub fn block_demand(device: &DeviceModel, program: &IrProgram, instrs: &[usize]) -> ResourceVector {
    let mut v = ResourceVector::zero();
    let mut objects_seen: BTreeSet<&str> = BTreeSet::new();
    for &idx in instrs {
        let instr = &program.instructions[idx];
        v += instruction_demand(device, program, instr);
        if let Some(obj) = instr.object() {
            if objects_seen.insert(obj) {
                if let Some(decl) = program.object(obj) {
                    v += object_demand(device, &decl.kind);
                }
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_ir::{AluOp, MatchKind, Operand, ProgramBuilder, SketchKind};

    fn kvs_like() -> IrProgram {
        let mut b = ProgramBuilder::new("kvs");
        b.table("cache", MatchKind::Exact, 128, 512, 5000, false);
        b.sketch("cms", SketchKind::CountMin, 3, 1024, 32);
        b.hash_fn("h", clickinc_ir::HashAlgo::Crc16, Some(5000));
        b.get("vals", "cache", vec![Operand::hdr("key")]);
        b.count(Some("c"), "cms", vec![Operand::hdr("key")], Operand::int(1));
        b.hash("i", "h", vec![Operand::hdr("key")]);
        b.alu("x", AluOp::Add, Operand::var("c"), Operand::int(1));
        b.forward();
        b.build().expect("test program is well-formed")
    }

    #[test]
    fn table_memory_is_charged_once_per_object() {
        let p = kvs_like();
        let dev = DeviceModel::tofino();
        let one_read = block_demand(&dev, &p, &[0]);
        // two reads of the same table must not double the SRAM blocks
        let mut p2 = p.clone();
        let extra = clickinc_ir::Instruction::new(
            100,
            OpCode::ReadState {
                dest: "vals2".into(),
                object: "cache".into(),
                index: vec![Operand::hdr("key")],
            },
        );
        p2.instructions.push(extra);
        let two_reads = block_demand(&dev, &p2, &[0, 5]);
        assert_eq!(one_read[Resource::SramBlocks], two_reads[Resource::SramBlocks]);
        assert!(two_reads[Resource::TableSlots] > one_read[Resource::TableSlots]);
    }

    #[test]
    fn exact_tables_use_sram_ternary_use_tcam() {
        let dev = DeviceModel::tofino();
        let exact = object_demand(
            &dev,
            &ObjectKind::Table {
                match_kind: MatchKind::Exact,
                key_width: 128,
                value_width: 512,
                depth: 5000,
                stateful: false,
            },
        );
        assert!(exact[Resource::SramBlocks] >= 1.0);
        assert_eq!(exact[Resource::TcamBlocks], 0.0);
        let tern = object_demand(
            &dev,
            &ObjectKind::Table {
                match_kind: MatchKind::Ternary,
                key_width: 32,
                value_width: 8,
                depth: 2048,
                stateful: false,
            },
        );
        assert!(tern[Resource::TcamBlocks] >= 1.0);
    }

    #[test]
    fn sketch_demands_one_salu_per_row() {
        let dev = DeviceModel::tofino();
        let cms = object_demand(
            &dev,
            &ObjectKind::Sketch { kind: SketchKind::CountMin, rows: 3, cols: 65536, width: 32 },
        );
        assert_eq!(cms[Resource::StatefulAlus], 3.0);
        assert!(cms[Resource::SramBlocks] >= 48.0, "3 * 64K * 32b = 48 blocks");
    }

    #[test]
    fn fpga_charges_bram_for_memory() {
        let fpga = DeviceModel::fpga_accelerator();
        let tofino = DeviceModel::tofino();
        let arr = ObjectKind::Array { rows: 1, size: 100_000, width: 32 };
        assert!(object_demand(&fpga, &arr)[Resource::Bram] > 0.0);
        assert_eq!(object_demand(&tofino, &arr)[Resource::Bram], 0.0);
    }

    #[test]
    fn guarded_instructions_consume_gateways() {
        let p = kvs_like();
        let dev = DeviceModel::tofino();
        let mut guarded = p.instructions[3].clone();
        guarded.guard = Some(clickinc_ir::Guard::single(clickinc_ir::Predicate::new(
            Operand::var("c"),
            clickinc_ir::CmpOp::Ne,
            Operand::int(0),
        )));
        let d_plain = instruction_demand(&dev, &p, &p.instructions[3]);
        let d_guarded = instruction_demand(&dev, &p, &guarded);
        assert_eq!(d_plain[Resource::GatewaySlots], 0.0);
        assert_eq!(d_guarded[Resource::GatewaySlots], 1.0);
    }

    #[test]
    fn rtc_devices_charge_more_instruction_slots_for_state() {
        let p = kvs_like();
        let nfp = DeviceModel::nfp_smartnic();
        let tofino = DeviceModel::tofino();
        let d_nfp = instruction_demand(&nfp, &p, &p.instructions[1]);
        let d_tof = instruction_demand(&tofino, &p, &p.instructions[1]);
        assert!(d_nfp[Resource::InstrSlots] > d_tof[Resource::InstrSlots]);
    }

    #[test]
    fn whole_program_fits_a_tofino_but_not_a_server() {
        let p = kvs_like();
        let all: Vec<usize> = (0..p.len()).collect();
        let tofino = DeviceModel::tofino();
        let demand = block_demand(&tofino, &p, &all);
        assert!(demand.fits_within(&tofino.total_capacity()));
        let server = DeviceModel::server();
        let sdemand = block_demand(&server, &p, &all);
        assert!(!sdemand.fits_within(&server.total_capacity()));
    }

    #[test]
    fn crypto_and_float_demand_dsp() {
        let mut b = ProgramBuilder::new("c");
        b.object("enc", ObjectKind::Crypto { algo: clickinc_ir::CryptoAlgo::Aes });
        b.emit(OpCode::Crypto {
            dest: "e".into(),
            object: "enc".into(),
            input: Operand::hdr("key"),
            encrypt: true,
        });
        b.falu("f", AluOp::Mul, Operand::hdr("a"), Operand::hdr("b"));
        let p = b.build().expect("test program is well-formed");
        let fpga = DeviceModel::fpga_smartnic();
        let d = block_demand(&fpga, &p, &[0, 1]);
        assert!(d[Resource::Dsp] > 0.0);
        assert!(d[Resource::Lut] > 0.0);
    }
}
