//! # clickinc-runtime — serving INC programs under load
//!
//! The controller (`clickinc`) answers *where programs run*; this crate
//! answers *how traffic reaches them at scale*.  It replaces the
//! single-threaded scenario loop with a sharded, batched traffic engine:
//!
//! * **Sharded execution** — [`engine::TrafficEngine`] partitions tenants
//!   across worker threads by a stable hash.  Each shard owns private
//!   replicas of the device planes its tenants traverse and drains
//!   per-device ingress queues in configurable batches ([`shard`]).  Tenant
//!   isolation (renamed objects + user-id guards) makes the partition
//!   semantically equivalent to one shared store: the union of shard stores
//!   equals the unsharded store, and per-tenant results are invariant in the
//!   shard count.
//! * **Workload generation** — [`workload`] provides seeded, open-loop
//!   generators: a Zipf-skewed KVS stream (precomputed-CDF sampler shared
//!   with the emulator's scenario driver), sparse gradient aggregation, and
//!   a mixed multi-tenant profile.
//! * **Telemetry** — [`telemetry`] keeps lock-free per-shard counters merged
//!   into per-tenant stats: goodput against the workload's virtual clock,
//!   in-network hit ratio, p50/p99 latency from log₂ histograms, per-link
//!   byte counts — all exportable as JSON.
//! * **Live reconfiguration** — tenants are added and removed *while other
//!   tenants' traffic flows*.  Control messages share the FIFO channel with
//!   traffic, so a removal quiesces exactly the affected tenant's queued
//!   packets, then drops only its snippets and tables.  The `clickinc`
//!   crate's `ClickIncService` facade owns both a controller and an engine
//!   and mirrors every transactional deploy/remove onto the shards
//!   automatically; `Controller::attach_engine` is the low-level hook-based
//!   wiring for ablation experiments.
//!
//! ```
//! use clickinc_runtime::{EngineConfig, TrafficEngine};
//! use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
//!
//! let engine = TrafficEngine::new(EngineConfig { shards: 2, batch_size: 64 });
//! let handle = engine.handle();
//! handle.add_tenant("t1", Vec::new()); // no hops: pure pass-through
//! let mut wl = KvsWorkload::new(KvsWorkloadConfig {
//!     tenant: "t1".into(),
//!     requests: 100,
//!     ..Default::default()
//! });
//! handle.run_workload(&mut wl, 100, 32);
//! handle.flush();
//! let outcome = engine.finish();
//! assert_eq!(outcome.telemetry.tenant("t1").unwrap().to_server, 100);
//! ```

pub mod engine;
pub mod shard;
pub mod telemetry;
pub mod tenant;
pub mod workload;

pub use engine::{EngineConfig, EngineError, EngineHandle, RunOutcome, TrafficEngine};
pub use telemetry::{TelemetryReport, TenantCounters, TenantStats};
pub use tenant::TenantHop;
pub use workload::{
    GeneratedPacket, KvsWorkload, KvsWorkloadConfig, MixedWorkload, MlAggWorkload,
    MlAggWorkloadConfig, Workload,
};
