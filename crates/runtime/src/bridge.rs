//! Wiring the controller's reconfiguration events into a running engine.
//!
//! The controller owns the control plane (compile → place → synthesize →
//! install); the engine owns the serving plane.  [`attach_controller`]
//! registers a [`ReconfigureHook`] so every `Controller::deploy` and
//! `Controller::remove` is mirrored onto the engine's shards while traffic
//! keeps flowing — the live add/remove of paper §6 / Fig. 14, end to end.
//!
//! [`ReconfigureHook`]: clickinc::ReconfigureHook

use crate::engine::EngineHandle;
use clickinc::{Controller, ReconfigureEvent};

/// Mirror every future deploy/remove of `controller` onto the engine.
///
/// Tenants already deployed before this call are *not* replayed — attach the
/// bridge first, then deploy, so the engine sees every tenant exactly once.
pub fn attach_controller(controller: &mut Controller, handle: EngineHandle) {
    controller.add_reconfigure_hook(Box::new(move |event| match event {
        ReconfigureEvent::TenantAdded { user, hops, .. } => {
            handle.add_tenant(user, hops.clone());
        }
        ReconfigureEvent::TenantRemoved { user } => {
            handle.remove_tenant(user);
        }
    }));
}
