//! End-to-end: the controller's deploy/remove events drive the runtime
//! engine through the reconfigure bridge, and deployed programs serve
//! traffic on the sharded planes.

use clickinc::lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc::topology::Topology;
use clickinc::{Controller, ServiceRequest};
use clickinc_ir::Value;
use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
use clickinc_runtime::{attach_controller, EngineConfig, EngineHandle, TrafficEngine};

/// Pre-populate a controller-deployed tenant's (isolation-renamed) cache on
/// whichever device hosts it.
fn populate_cache(controller: &Controller, handle: &EngineHandle, user: &str, hot_keys: i64) {
    let table = format!("{user}_cache");
    for hop in controller.tenant_hops(user) {
        let hosts_cache = hop.snippets.iter().any(|s| s.objects.iter().any(|o| o.name == table));
        if !hosts_cache {
            continue;
        }
        for key in 0..hot_keys {
            handle.populate_table(
                user,
                &hop.device,
                &table,
                vec![Value::Int(key)],
                vec![Value::Int(key * 1000 + 7)],
            );
        }
    }
}

#[test]
fn controller_bridge_serves_deployed_tenants_and_survives_live_reconfiguration() {
    let engine = TrafficEngine::new(EngineConfig { shards: 2, batch_size: 32 });
    let handle = engine.handle();
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    attach_controller(&mut controller, engine.handle());

    // two KVS tenants deploy; the bridge mirrors them onto the engine
    for (user, srcs) in [("kvs_a", ["pod0a", "pod1a"]), ("kvs_b", ["pod0b", "pod1b"])] {
        let t = kvs_template(user, KvsParams { cache_depth: 2000, ..Default::default() });
        controller.deploy(ServiceRequest::from_template(t, &srcs, "pod2b")).unwrap();
        populate_cache(&controller, &handle, user, 64);
    }

    let workload = |user: &str, id: i64, requests, seed| {
        KvsWorkload::new(KvsWorkloadConfig {
            tenant: user.to_string(),
            user_id: id,
            keys: 500,
            skew: 1.2,
            requests,
            rate_pps: 1_000_000.0,
            seed,
        })
    };
    let id_a = controller.numeric_id_of("kvs_a").unwrap();
    let id_b = controller.numeric_id_of("kvs_b").unwrap();
    let mut wl_a = workload("kvs_a", id_a, 1000, 5);
    let mut wl_b = workload("kvs_b", id_b, 1000, 6);

    // first traffic phase
    handle.run_workload(&mut wl_a, 500, 64);
    handle.run_workload(&mut wl_b, 500, 64);

    // a third tenant arrives mid-run and leaves again, all through the
    // controller, while kvs_a/kvs_b keep flowing
    let t = mlagg_template(
        "agg_c",
        MlAggParams { dims: 8, num_aggregators: 1024, ..Default::default() },
    );
    controller.deploy(ServiceRequest::from_template(t, &["pod1a", "pod1b"], "pod2a")).unwrap();
    handle.run_workload(&mut wl_a, 250, 64);
    handle.run_workload(&mut wl_b, 250, 64);
    controller.remove("agg_c").unwrap();

    // final phase after the removal
    handle.run_workload(&mut wl_a, usize::MAX, 64);
    handle.run_workload(&mut wl_b, usize::MAX, 64);
    handle.flush();

    let outcome = engine.finish();
    for user in ["kvs_a", "kvs_b"] {
        let stats = outcome.telemetry.tenant(user).unwrap_or_else(|| panic!("{user} served"));
        assert_eq!(stats.packets, 1000, "{user} traffic all injected");
        assert_eq!(stats.completed, 1000, "{user} traffic all completed");
        assert!(stats.hit_ratio > 0.3, "{user} hot keys answered in-network: {}", stats.hit_ratio);
        assert!(stats.goodput_gbps > 0.0);
    }
    // the engine really saw the transient tenant
    assert!(outcome.telemetry.tenant("agg_c").is_some(), "bridge mirrored the deploy");
    // and the JSON export carries every tenant
    let json = outcome.telemetry.to_json();
    assert!(json.contains("\"kvs_a\"") && json.contains("\"agg_c\""));
}
