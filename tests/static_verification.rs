//! The static-verification pipeline, end to end:
//!
//! 1. **Golden fig13 diagnostics** — every provider-template program used by
//!    the fig13-scale scenarios verifies clean (no errors, no warnings), and
//!    the classification infos the pipeline does emit are byte-stable.
//! 2. **Per-pass trip fixtures** — six mutated programs, each constructed to
//!    trip exactly one verifier pass exactly once.
//! 3. **The service gate** — a deliberately isolation-violating program is
//!    refused as `ClickIncError::Verification` before any ledger or plane
//!    mutation, and the diagnostics JSON export round-trips.
//! 4. **Verification ⇒ runs clean** — proptest: any generated program the
//!    pipeline passes executes on the emulator with every constant-indexed
//!    count landing in exactly the addressed cell (no wrap-around aliasing),
//!    over sampled packet traces.

use clickinc::lang::templates::{
    count_min_sketch, dqacc_template, kvs_template, mlagg_sparse_user, mlagg_template, DqAccParams,
    KvsParams, MlAggParams,
};
use clickinc::topology::Topology;
use clickinc::{ClickIncError, ClickIncService, Controller, ServiceRequest};
use clickinc_device::DeviceModel;
use clickinc_emulator::{DevicePlane, Packet};
use clickinc_frontend::compile_source;
use clickinc_ir::analysis::{DeviceTarget, PlacedSnippet};
use clickinc_ir::{
    DiagnosticSet, IrProgram, Operand, PassContext, PassManager, ProgramBuilder, Severity,
    ValueType,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Run the default pipeline over one program with no placement slices.
fn verify(tenant: &str, program: &IrProgram, isolated: bool) -> DiagnosticSet {
    PassManager::with_default_passes().run(&PassContext {
        tenant: tenant.to_string(),
        isolated,
        programs: std::slice::from_ref(program),
        placements: &[],
    })
}

fn request(user: &str, source: &str) -> ServiceRequest {
    ServiceRequest::new(user, source, &["pod0a"], "pod2b")
}

// ---- 1. golden fig13 diagnostics -----------------------------------------

#[test]
fn fig13_template_programs_verify_clean_through_the_service() {
    let service = ClickIncService::new(Topology::emulation_topology_all_tofino())
        .expect("engine config is valid");
    let mlagg_params =
        MlAggParams { dims: 32, num_workers: 4, num_aggregators: 4096, is_float: false };
    let cases: Vec<(&str, String)> = vec![
        (
            "kvs_srv",
            kvs_template("kvs_srv", KvsParams { cache_depth: 2000, ..Default::default() }).source,
        ),
        ("mlagg", mlagg_template("mlagg", mlagg_params).source),
        ("dqacc", dqacc_template("dqacc", DqAccParams::default()).source),
        ("cms", count_min_sketch("cms", 3, 512).source),
    ];
    let mut rendered: Vec<String> = Vec::new();
    let mut summary: BTreeMap<String, usize> = BTreeMap::new();
    for (user, source) in &cases {
        let plan = service.plan(&request(user, source)).expect("fig13 template plans");
        let diags = plan.diagnostics();
        assert!(!diags.has_errors(), "{user} must verify clean:\n{diags}");
        assert!(!diags.has_warnings(), "{user} must carry no warnings:\n{diags}");
        for d in diags.iter() {
            assert_eq!(d.severity, Severity::Info);
            *summary.entry(format!("{user}/{}", d.pass)).or_insert(0) += 1;
            rendered.push(d.to_string());
        }
    }
    // golden snapshot of the classification infos: the per-pass counts are
    // byte-stable across runs, so any drift in the analyses diffs here.
    // Every tenant gets its isolation guard hoisted into the program
    // precondition, and cms's two dead values are *eliminated* (the
    // dead-snippet warnings the seed carried are gone because the optimizer
    // removes the instructions before the verifier re-runs).
    let golden: BTreeMap<String, usize> = [
        ("cms/dead-value-elim", 1),
        ("cms/guard-hoist", 1),
        ("dqacc/commutativity", 8),
        ("dqacc/guard-hoist", 1),
        ("kvs_srv/guard-hoist", 1),
        ("mlagg/commutativity", 70),
        ("mlagg/guard-hoist", 1),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();
    assert_eq!(summary, golden, "the fig13 classification set drifted:\n{}", rendered.join("\n"));
    // and one fully-rendered line stays byte-identical
    assert_eq!(
        rendered[0],
        "info [guard-hoist] kvs_srv/kvs_srv: hoisted 1 guard predicate(s) shared by all 16 \
         instruction(s) into the program precondition: meta.inc_user == 1"
    );
}

#[test]
fn fig13_plane_programs_verify_clean_without_isolation() {
    // the fig13 scenarios install these programs on emulated planes directly
    // (no tenant isolation), which is exactly what `isolated: false` models
    let params = MlAggParams { dims: 32, num_workers: 4, num_aggregators: 4096, is_float: false };
    let sparse = mlagg_sparse_user("sparse", params, 4, 8);
    let compression: String = sparse
        .source
        .lines()
        .filter(|l| !l.trim_start().starts_with("agg(hdr)"))
        .collect::<Vec<_>>()
        .join("\n");
    for (user, source) in
        [("mlagg", mlagg_template("mlagg", params).source), ("sparse", compression)]
    {
        let ir = compile_source(user, &source).expect("fig13 program compiles");
        let diags = verify(user, &ir, false);
        assert!(!diags.has_errors(), "{user}:\n{diags}");
        assert!(!diags.has_warnings(), "{user}:\n{diags}");
    }
}

// ---- 2. one fixture per pass ---------------------------------------------

/// Count how many diagnostics `pass` emitted, and assert nothing else fired.
fn only_pass(diags: &DiagnosticSet, pass: &str) -> usize {
    for d in diags.iter() {
        assert_eq!(d.pass, pass, "unexpected extra finding: {d}");
    }
    diags.iter().count()
}

#[test]
fn isolation_fixture_trips_the_isolation_pass_once() {
    let mut b = ProgramBuilder::new("alice");
    b.array("mallory_secret", 1, 8, 32);
    b.set_header("flag", Operand::int(1));
    b.forward();
    let program = b.build().expect("fixture builds");
    let diags = verify("alice", &program, true);
    assert_eq!(only_pass(&diags, "isolation"), 1, "{diags}");
    assert_eq!(diags.worst(), Some(Severity::Error));
}

#[test]
fn uninit_header_fixture_trips_the_uninit_header_pass_once() {
    let mut b = ProgramBuilder::new("t");
    b.set_header("out", Operand::hdr("ghost"));
    b.forward();
    let program = b.build().expect("fixture builds");
    let diags = verify("t", &program, false);
    assert_eq!(only_pass(&diags, "uninit-header"), 1, "{diags}");
    assert_eq!(diags.worst(), Some(Severity::Error));
}

#[test]
fn bounds_fixture_trips_the_bounds_pass_once() {
    let mut b = ProgramBuilder::new("t");
    b.array("ctr", 1, 4, 32);
    b.count(None, "ctr", vec![Operand::int(0), Operand::int(9)], Operand::int(1));
    b.forward();
    let program = b.build().expect("fixture builds");
    let diags = verify("t", &program, false);
    assert_eq!(only_pass(&diags, "bounds"), 1, "{diags}");
    assert_eq!(diags.worst(), Some(Severity::Error));
}

#[test]
fn resource_bound_fixture_trips_the_resource_pass_once() {
    // a keyed count is fine everywhere — except on a device that supports no
    // capability class at all
    let mut b = ProgramBuilder::new("t");
    b.header("key", ValueType::Bit(32));
    b.array("ctr", 1, 4, 32);
    b.count(None, "ctr", vec![Operand::hdr("key")], Operand::int(1));
    b.forward();
    let program = b.build().expect("fixture builds");
    let placements = vec![PlacedSnippet {
        device: "crippled0".to_string(),
        target: DeviceTarget {
            device: "crippled0".to_string(),
            kind: "test".to_string(),
            supported: Default::default(),
            storage_capacity_bits: u64::MAX,
        },
        program: program.clone(),
    }];
    let diags = PassManager::with_default_passes().run(&PassContext {
        tenant: "t".to_string(),
        isolated: false,
        programs: std::slice::from_ref(&program),
        placements: &placements,
    });
    assert_eq!(only_pass(&diags, "resource-bound"), 1, "{diags}");
    assert_eq!(diags.worst(), Some(Severity::Error));
}

#[test]
fn dead_snippet_fixture_trips_the_dead_snippet_pass_once() {
    let mut b = ProgramBuilder::new("t");
    b.forward();
    let program = b.build().expect("fixture builds");
    let diags = verify("t", &program, false);
    assert_eq!(only_pass(&diags, "dead-snippet"), 1, "{diags}");
    assert_eq!(diags.worst(), Some(Severity::Warning));
}

#[test]
fn commutativity_fixture_trips_the_commutativity_pass_once() {
    let mut b = ProgramBuilder::new("t");
    b.header("key", ValueType::Bit(32));
    b.header("seq", ValueType::Bit(32));
    b.array("reg", 1, 64, 32);
    b.write("reg", vec![Operand::int(0), Operand::hdr("key")], vec![Operand::hdr("seq")]);
    b.forward();
    let program = b.build().expect("fixture builds");
    let diags = verify("t", &program, false);
    assert_eq!(only_pass(&diags, "commutativity"), 1, "{diags}");
    assert_eq!(diags.worst(), Some(Severity::Info));
}

// ---- 3. the service gate --------------------------------------------------

#[test]
fn isolation_violating_program_is_rejected_before_any_mutation() {
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    let planes_before = controller.plane_fingerprints();
    let ratio_before = controller.remaining_resource_ratio();

    // a pre-isolated deploy that claims tenant `alice` but counts into an
    // object outside her namespace — placeable, compilable, and exactly what
    // the verifier exists to refuse
    let mut b = ProgramBuilder::new("alice");
    b.header("key", ValueType::Bit(32));
    b.array("mallory_secret", 1, 64, 32);
    b.count(None, "mallory_secret", vec![Operand::hdr("key")], Operand::int(1));
    b.forward();
    let evil = b.build().expect("fixture builds");

    let err = controller
        .deploy_isolated(&request("alice", "forward()\n"), evil)
        .expect_err("the verifier must refuse the deploy");
    match err {
        ClickIncError::Verification { user, diagnostics } => {
            assert_eq!(user, "alice");
            assert!(diagnostics.has_errors());
            assert!(
                diagnostics.at(Severity::Error).all(|d| d.pass == "isolation"),
                "only the isolation pass should error here:\n{diagnostics}"
            );
            // the JSON export round-trips losslessly (the CI artifact format)
            let back = DiagnosticSet::from_json(&diagnostics.to_json()).expect("parses");
            assert_eq!(back, diagnostics);
        }
        other => panic!("expected ClickIncError::Verification, got {other:?}"),
    }

    // nothing was booked or installed
    assert_eq!(controller.plane_fingerprints(), planes_before);
    assert_eq!(controller.remaining_resource_ratio(), ratio_before);
    assert!(controller.active_users().is_empty());

    // the compile-and-isolate path renames the same program into the tenant's
    // namespace, so the identical request deploys fine
    let source = "ctr = Array(row=1, size=64, w=32)\ncount(ctr, hdr.key, 1)\nforward()\n";
    controller.deploy(request("alice", source)).expect("the isolated path deploys");
    assert_eq!(controller.active_users(), vec!["alice"]);
}

// ---- 4. verification ⇒ runs clean ----------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated counter program the pipeline passes runs on the
    /// emulator with every count landing in exactly the addressed cell —
    /// and the pipeline errors precisely when a constant index would have
    /// wrapped at runtime.
    #[test]
    fn verified_programs_run_without_store_aliasing(
        rows in 1u32..4,
        size in 1u32..12,
        raw_accesses in proptest::collection::vec(0u32..96, 1..6),
        packets in 1i64..6,
    ) {
        // the vendored proptest has no tuple strategies: decode each access
        // as (row, cell) from one integer in 0..6×16
        let accesses: Vec<(u32, u32)> = raw_accesses.iter().map(|v| (v / 16, v % 16)).collect();
        let mut b = ProgramBuilder::new("t");
        b.array("ctr", rows, size, 32);
        for (row, idx) in &accesses {
            b.count(None, "ctr", vec![Operand::int(i64::from(*row)), Operand::int(i64::from(*idx))], Operand::int(1));
        }
        b.forward();
        let program = b.build().expect("generated program is well-formed");

        let diags = verify("t", &program, false);
        let in_bounds = accesses.iter().all(|(r, i)| *r < rows && *i < size);
        prop_assert_eq!(!diags.has_errors(), in_bounds, "verifier disagrees with geometry:\n{}", diags);

        if !diags.has_errors() {
            let mut plane = DevicePlane::new("dev", DeviceModel::tofino());
            plane.install(program);
            for _ in 0..packets {
                let mut pkt = Packet::new("src", "dst", 1, BTreeMap::new());
                plane.process(&mut pkt);
            }
            // every cell holds packets × (number of accesses addressing it):
            // nothing wrapped, nothing aliased, nothing leaked elsewhere
            let mut expected: BTreeMap<(u32, u32), i64> = BTreeMap::new();
            for (r, i) in &accesses {
                *expected.entry((*r, *i)).or_insert(0) += packets;
            }
            for r in 0..rows {
                for i in 0..size {
                    let want = expected.get(&(r, i)).copied().unwrap_or(0);
                    prop_assert_eq!(plane.store().array_read("ctr", r, i), want);
                }
            }
        }
    }
}
