//! Workspace umbrella crate: see the `clickinc` crate for the public API.
pub use clickinc;
