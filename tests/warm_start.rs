//! Property tests for the incremental-placement pipeline: the segment memo
//! is a pure accelerator (a warm service plans bit-identically to a cold
//! one solving every subproblem from scratch, whatever the arrival and
//! departure sequence), and the plan cache's structural invalidation never
//! serves a plan touching a device whose health moved.

use clickinc::{ClickIncService, ServiceRequest};
use clickinc_lang::templates::{
    count_min_sketch, kvs_template, mlagg_template, KvsParams, MlAggParams,
};
use clickinc_placement::PlacementPlan;
use clickinc_topology::Topology;
use proptest::prelude::*;

/// A request from the churn scenario's shape pool: six canonical shapes
/// (KVS, MLAgg, CMS with two parameterizations each) under a fresh tenant
/// name — co-tenant shape reuse is the memo's unit of caching.
fn pooled_request(user: &str, slot: u8) -> ServiceRequest {
    let slot = (slot % 6) as usize;
    let builder = ServiceRequest::builder(user);
    let builder = match slot % 3 {
        0 => builder
            .template(kvs_template(
                user,
                KvsParams { cache_depth: 1000 + 500 * (slot as u32 / 3), ..Default::default() },
            ))
            .from_("pod0a"),
        1 => builder
            .template(mlagg_template(
                user,
                MlAggParams {
                    dims: 16 + 8 * (slot as u32 / 3),
                    num_aggregators: 512,
                    ..Default::default()
                },
            ))
            .from_("pod1a"),
        _ => builder.template(count_min_sketch(user, 3, 512 << (slot / 3))).from_("pod0b"),
    };
    builder.to("pod2b").build().expect("pooled request is well-formed")
}

/// The placement solution's observable substance: which devices, how many
/// instructions each, and what resource demand each assignment stamps on
/// the ledger.
fn solution_of(plan: &PlacementPlan) -> Vec<(String, usize, String)> {
    plan.assignments
        .iter()
        .filter(|a| !a.is_empty())
        .map(|a| (a.device.clone(), a.instruction_count(), format!("{:?}", a.demand)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever epoch-move sequence (arrivals committing demand, departures
    /// releasing it), a memoized service plans bit-identically to a cold
    /// one with the memo disabled: same plan fingerprint, same placement
    /// fingerprint, same per-device instruction counts and ledger demand,
    /// same ledger stamps — and when one side cannot place, the other
    /// fails the same way.
    #[test]
    fn warm_solves_are_bit_identical_to_cold(
        ops in proptest::collection::vec(0u8..60, 4..20),
    ) {
        let topology = Topology::emulation_topology_all_tofino();
        let warm = ClickIncService::new(topology.clone()).expect("warm service starts");
        let cold = ClickIncService::new(topology).expect("cold service starts");
        cold.controller().set_solve_memo(false);

        let mut active: Vec<String> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            // each op packs a shape slot and a departure roll: a ~30%
            // departure mix keeps both arrival and release epochs in the
            // sequence
            let (slot, roll) = (op % 6, op / 6);
            let slot = &slot;
            if roll < 3 && !active.is_empty() {
                // departure: both sides release the same tenant, moving the
                // epoch and the ledger in lockstep
                let user = active.remove(*slot as usize % active.len());
                warm.remove(&user).expect("warm removal succeeds");
                cold.remove(&user).expect("cold removal succeeds");
                continue;
            }
            let user = format!("tenant{i}");
            match (warm.plan(&pooled_request(&user, *slot)), cold.plan(&pooled_request(&user, *slot))) {
                (Ok(wp), Ok(cp)) => {
                    prop_assert_eq!(wp.fingerprint(), cp.fingerprint(), "plan fingerprints diverged");
                    prop_assert_eq!(
                        wp.placement().fingerprint(),
                        cp.placement().fingerprint(),
                        "placement fingerprints diverged"
                    );
                    prop_assert_eq!(solution_of(wp.placement()), solution_of(cp.placement()));
                    prop_assert_eq!(wp.ledger_stamps(), cp.ledger_stamps(), "ledger stamps diverged");
                    // commit on both sides: the next arrival solves against
                    // a moved epoch and a depleted ledger
                    warm.deploy(pooled_request(&user, *slot)).expect("warm deploy after a clean plan");
                    cold.deploy(pooled_request(&user, *slot)).expect("cold deploy after a clean plan");
                    active.push(user);
                }
                (Err(we), Err(ce)) => {
                    prop_assert_eq!(we.to_string(), ce.to_string(), "failure modes diverged");
                }
                (warm_result, cold_result) => {
                    prop_assert!(
                        false,
                        "warm/cold feasibility diverged for {}: warm {:?}, cold {:?}",
                        user,
                        warm_result.map(|p| p.fingerprint()),
                        cold_result.map(|p| p.fingerprint()),
                    );
                }
            }
        }

        // the speedup is real only if the warm side consulted the memo and
        // the cold side never touched it
        let warm_stats = warm.controller().solve_cache_stats();
        let cold_stats = cold.controller().solve_cache_stats();
        prop_assert!(warm_stats.hits + warm_stats.misses > 0, "the warm side must use the memo");
        prop_assert_eq!(cold_stats.hits + cold_stats.misses, 0, "the cold side must bypass it");
        warm.finish();
        cold.finish();
    }

    /// Populate the plan cache, down a device some cached plan uses, and
    /// re-plan: structural invalidation must have evicted every plan
    /// touching the moved device, so no served plan — cached or re-solved —
    /// touches it.  Restoring the device converges the solutions back to
    /// the originals.
    #[test]
    fn structural_invalidation_never_serves_plans_touching_a_downed_device(
        victim_pick in 0usize..16,
        slots in proptest::collection::vec(0u8..6, 4..10),
    ) {
        let service = ClickIncService::new(Topology::emulation_topology_all_tofino())
            .expect("service starts");
        let requests: Vec<ServiceRequest> = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| pooled_request(&format!("cached{i}"), *slot))
            .collect();
        let planner = service.planner();

        let (first, first_stats) = planner.plan_all_with_stats(&requests);
        let first: Vec<_> = first
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .expect("every pooled request solves on the empty network");
        prop_assert_eq!(first_stats.cache_misses as usize, requests.len());

        // the victim is a physical device some cached plan actually touches
        let mut devices: Vec<String> = first
            .iter()
            .flat_map(|p| p.physical_devices().iter().cloned())
            .collect();
        devices.sort();
        devices.dedup();
        let victim = devices[victim_pick % devices.len()].clone();

        service.fail_device(&victim).expect("downing an idle device succeeds");
        prop_assert!(
            service.planner_stats().structural_evictions > 0,
            "downing a placed-on device must evict cached plans"
        );
        let (replans, _) = planner.plan_all_with_stats(&requests);
        for plan in replans.into_iter().flatten() {
            prop_assert!(
                !plan.touches_physical(&victim),
                "a served plan touches the downed device {}", &victim
            );
            // the placement labels carry the physical name in brackets
            // (e.g. `tor[ToR5]`): none may mention the victim
            let bracketed = format!("[{}]", &victim);
            prop_assert!(
                !plan.placement().devices_used().iter().any(|d| d.contains(&bracketed))
            );
        }

        // the restore brings the capacity back: re-planning converges to
        // the original placement solutions
        service.restore_device(&victim).expect("restore succeeds");
        let (restored, _) = planner.plan_all_with_stats(&requests);
        let restored: Vec<_> = restored
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .expect("every pooled request solves again after the restore");
        let placement_fp =
            |plans: &[clickinc::DeploymentPlan]| -> Vec<u64> {
                plans.iter().map(|p| p.placement().fingerprint()).collect()
            };
        prop_assert_eq!(placement_fp(&first), placement_fp(&restored));
        service.finish();
    }
}
