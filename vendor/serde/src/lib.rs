//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Models serialization through a JSON-like [`Value`] tree: `Serialize`
//! converts a type into a `Value`, `Deserialize` reconstructs it from one.
//! `serde_json` (the sibling stand-in) handles the text representation.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree, the interchange format between `Serialize`,
/// `Deserialize` and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for &str {
    fn serialize_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(DeError::custom("expected number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    Value::Num(_) => Err(DeError::custom("expected integer, found fraction")),
                    _ => Err(DeError::custom("expected integer")),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::custom("expected array")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.serialize_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(m) => {
                m.iter().map(|(k, v)| V::deserialize_value(v).map(|v| (k.clone(), v))).collect()
            }
            _ => Err(DeError::custom("expected object")),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
