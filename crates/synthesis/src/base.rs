//! The operator's base program.
//!
//! Every device runs basic network functions regardless of INC: header
//! validation, a forwarding decision, and housekeeping counters.  For synthesis
//! the base program is split into a *head* (everything user snippets depend on,
//! e.g. packet integrity checks — "only valid packets should be handed to the
//! user programs") and a *tail* (everything that depends on the user snippets,
//! e.g. the final forwarding decision, which must observe address rewrites made
//! by programs like NetCache).

use clickinc_ir::{CmpOp, IrProgram, Operand, Predicate, ProgramBuilder, ValueType};

/// A base program split into its head and tail parts.
#[derive(Debug, Clone, PartialEq)]
pub struct BaseProgram {
    /// Functions the user snippets depend on (parse + validate).
    pub head: IrProgram,
    /// Functions that depend on the user snippets (forwarding + counters).
    pub tail: IrProgram,
}

impl BaseProgram {
    /// Total instruction count of the base program.
    pub fn len(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// Whether the base program is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Build the representative operator base program used throughout the
/// evaluation: Ethernet/IPv4/UDP validation in the head; a LPM forwarding
/// lookup, a TTL decrement and a port counter in the tail.
pub fn base_program() -> BaseProgram {
    let mut head = ProgramBuilder::new("base_head");
    head.header("ethertype", ValueType::Bit(16));
    head.header("ip_version", ValueType::Bit(4));
    head.header("ip_ttl", ValueType::Bit(8));
    head.header("ip_dst", ValueType::Bit(32));
    head.header("udp_dport", ValueType::Bit(16));
    // validation: drop malformed packets before any user logic sees them
    head.cmp("valid_eth", CmpOp::Eq, Operand::hdr("ethertype"), Operand::int(0x0800));
    head.cmp("valid_ip", CmpOp::Eq, Operand::hdr("ip_version"), Operand::int(4));
    head.cmp("ttl_ok", CmpOp::Gt, Operand::hdr("ip_ttl"), Operand::int(0));
    head.guarded(Predicate::new(Operand::var("valid_eth"), CmpOp::Eq, Operand::int(0)), |b| {
        b.drop_packet();
    });
    head.guarded(Predicate::new(Operand::var("ttl_ok"), CmpOp::Eq, Operand::int(0)), |b| {
        b.drop_packet();
    });
    let head = head.build().expect("base head program is well-formed");

    let mut tail = ProgramBuilder::new("base_tail");
    tail.table("ipv4_lpm", clickinc_ir::MatchKind::Lpm, 32, 16, 1024, false);
    tail.array("port_counters", 1, 256, 64);
    tail.get("egress_port", "ipv4_lpm", vec![Operand::hdr("ip_dst")]);
    tail.alu("new_ttl", clickinc_ir::AluOp::Sub, Operand::hdr("ip_ttl"), Operand::int(1));
    tail.set_header("ip_ttl", Operand::var("new_ttl"));
    tail.count(None, "port_counters", vec![Operand::var("egress_port")], Operand::int(1));
    tail.forward();
    let tail = tail.build().expect("base tail program is well-formed");

    BaseProgram { head, tail }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_ir::CapabilityClass;

    #[test]
    fn base_program_validates_and_is_asic_friendly() {
        let base = base_program();
        assert!(base.head.validate().is_ok());
        assert!(base.tail.validate().is_ok());
        assert!(!base.is_empty());
        assert!(base.len() >= 10);
        // the base program runs on every switch family, so it must avoid
        // Tofino-unsupported classes
        let tofino = clickinc_device::DeviceModel::tofino();
        for class in base.head.required_capabilities().union(&base.tail.required_capabilities()) {
            assert!(tofino.supports(*class), "base program uses unsupported class {class}");
        }
        let _ = CapabilityClass::Bin;
    }

    #[test]
    fn head_validates_tail_forwards() {
        let base = base_program();
        assert!(base.head.instructions.iter().any(|i| matches!(i.op, clickinc_ir::OpCode::Drop)));
        assert!(base
            .tail
            .instructions
            .iter()
            .any(|i| matches!(i.op, clickinc_ir::OpCode::Forward)));
        // all base instructions belong to the operator (no owner annotation)
        assert!(base.head.instructions.iter().all(|i| i.is_base()));
        assert!(base.tail.instructions.iter().all(|i| i.is_base()));
    }
}
