//! Table 6 — incremental vs monolithic deployment: affected devices, affected
//! co-resident INC programs, affected pods (traffic) per add/remove step.

use clickinc_apps::table6_steps;
use clickinc_blockdag::{build_block_dag, BlockConfig};
use clickinc_frontend::compile_source;
use clickinc_placement::{place, PlacementConfig, PlacementNetwork, ResourceLedger};
use clickinc_synthesis::incremental::{add_user_program_monolithic, DeviceImages};
use clickinc_synthesis::{
    add_user_program, base_program, isolate_user_program, remove_user_program,
};
use clickinc_topology::{reduce_for_traffic, NodeId, Topology};
use std::collections::BTreeMap;

fn main() {
    println!("== Table 6: impact of incremental vs monolithic deployment ==");
    let topo = Topology::emulation_topology();
    let pod_of: BTreeMap<NodeId, Option<usize>> =
        topo.nodes().iter().map(|n| (n.id, n.pod)).collect();
    let base = base_program();

    let mut inc_images = DeviceImages::default();
    let mut mono_images = DeviceImages::default();
    let mut inc_ledger = ResourceLedger::new();
    let mut mono_ledger = ResourceLedger::new();
    let mut user_id = 1;

    println!(
        "{:<10} {:>14} {:>12} {:>12}   {:>14} {:>12} {:>12}",
        "Step", "ID devices", "ID INC", "ID pods", "MD devices", "MD INC", "MD pods"
    );
    for step in table6_steps() {
        match (step.request, step.remove) {
            (Some(request), _) => {
                let ir = compile_source(&request.user, &request.source).expect("compiles");
                let isolated = isolate_user_program(&ir, &request.user, user_id);
                user_id += 1;
                let dag = build_block_dag(&isolated, &BlockConfig::default());
                let sources: Vec<NodeId> =
                    request.sources.iter().map(|s| topo.find(s).expect("host")).collect();
                let dst = topo.find(&request.destination).expect("host");
                let reduced = reduce_for_traffic(&topo, &sources, dst, &[]);

                let plan_inc = place(
                    &isolated,
                    &dag,
                    &PlacementNetwork::from_reduced(&topo, &reduced, &inc_ledger),
                    &PlacementConfig::default(),
                );
                let plan_mono = place(
                    &isolated,
                    &dag,
                    &PlacementNetwork::from_reduced(&topo, &reduced, &mono_ledger),
                    &PlacementConfig::default(),
                );
                match (plan_inc, plan_mono) {
                    (Ok(pi), Ok(pm)) => {
                        for a in pi.assignments.iter().filter(|a| !a.is_empty()) {
                            for m in &a.members {
                                inc_ledger.consume(*m, a.demand);
                            }
                        }
                        for a in pm.assignments.iter().filter(|a| !a.is_empty()) {
                            for m in &a.members {
                                mono_ledger.consume(*m, a.demand);
                            }
                        }
                        let di = add_user_program(&mut inc_images, &base, &isolated, &pi, &pod_of);
                        let dm = add_user_program_monolithic(
                            &mut mono_images,
                            &base,
                            &isolated,
                            &pm,
                            &pod_of,
                        );
                        println!(
                            "{:<10} {:>14} {:>12} {:>12}   {:>14} {:>12} {:>12}",
                            step.label,
                            di.device_count(),
                            di.program_count(),
                            di.pod_count(),
                            dm.device_count(),
                            dm.program_count(),
                            dm.pod_count()
                        );
                    }
                    (i, m) => println!(
                        "{:<10} placement failed (incremental ok: {}, monolithic ok: {})",
                        step.label,
                        i.is_ok(),
                        m.is_ok()
                    ),
                }
            }
            (None, Some(user)) => {
                let di = remove_user_program(&mut inc_images, user, &pod_of);
                // monolithic removal recompiles every device that hosted any
                // program co-resident with the removed one
                let mut dm = remove_user_program(&mut mono_images, user, &pod_of);
                for (device, image) in &mono_images.images {
                    if !image.owners().is_empty() {
                        dm.affected_devices.insert(*device);
                        if let Some(Some(pod)) = pod_of.get(device) {
                            dm.affected_pods.insert(*pod);
                        }
                        for o in image.owners() {
                            dm.affected_programs.insert(o);
                        }
                    }
                }
                println!(
                    "{:<10} {:>14} {:>12} {:>12}   {:>14} {:>12} {:>12}",
                    step.label,
                    di.device_count(),
                    di.program_count(),
                    di.pod_count(),
                    dm.device_count(),
                    dm.program_count(),
                    dm.pod_count()
                );
            }
            _ => unreachable!(),
        }
    }
    println!("(ID = incremental deployment, MD = monolithic redeployment; paper: ID touches 50-75% less traffic)");
}
