//! Table 2 — individual program development productivity.
//!
//! The human part of Table 2 (developer trials and man-hours for hand-written
//! P4-16) cannot be re-measured mechanically; what we reproduce is the
//! machine-measurable ClickINC side: the templates compile successfully on the
//! first attempt (zero failed trials) and the full compile-to-IR latency is
//! milliseconds, not hours.

use clickinc_frontend::compile_source;
use clickinc_lang::templates::{
    dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams, MlAggParams,
};
use std::time::Instant;

fn main() {
    println!("== Table 2: development trials and time (ClickINC side) ==");
    println!(
        "{:<8} {:>14} {:>16} {:>24}",
        "App", "Compile trials", "Compile time", "Paper (P4-16 trials/time)"
    );
    let apps = [
        ("KVS", kvs_template("kvs", KvsParams::default()).source, "12 / ~1h"),
        ("MLAgg", mlagg_template("mlagg", MlAggParams::default()).source, "14 / ~3h"),
        ("DQAcc", dqacc_template("dqacc", DqAccParams::default()).source, "6 / ~30m"),
    ];
    for (name, source, paper) in apps {
        let start = Instant::now();
        let mut trials = 0;
        let ok = loop {
            trials += 1;
            match compile_source(name, &source) {
                Ok(ir) => break ir.validate().is_ok(),
                Err(_) if trials > 3 => break false,
                Err(_) => continue,
            }
        };
        let elapsed = start.elapsed();
        println!(
            "{:<8} {:>14} {:>13.2?} {:>27}",
            name,
            if ok { trials } else { -1 },
            elapsed,
            paper
        );
    }
    println!("(The paper's Table 2 ClickINC rows: 1 trial/~10m, 2/~25m, 0/~5m — dominated by human typing time.)");
}
