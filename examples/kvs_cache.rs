//! In-network key-value cache (NetCache-style): deploy the KVS template via
//! the controller, run a skewed request stream against the emulated data plane,
//! and report the cache hit ratio and latency benefit.
//!
//! Run with: `cargo run --example kvs_cache`

use clickinc::topology::Topology;
use clickinc::{Controller, ServiceRequest};
use clickinc_emulator::{run_kvs_scenario, DevicePlane, KvsConfig, NetworkSetup};
use clickinc_lang::templates::{kvs_template, KvsParams};

fn main() {
    println!("=== In-network KVS cache ===\n");
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    let template = kvs_template("kvs_0", KvsParams { cache_depth: 4096, ..Default::default() });
    let request = ServiceRequest::from_template(template, &["pod0a", "pod1a"], "pod2b");
    let deployment = controller.deploy(request).expect("KVS deploys").clone();
    println!(
        "KVS placed on: {:?} (solve time {:.2?})",
        deployment.plan.devices_used(),
        deployment.plan.solve_time
    );

    // Build an emulation path containing one of the devices that hosts the
    // cache, then compare against a path with no INC program.
    let device = controller.devices_of("kvs_0")[0];
    let cached_plane = controller.plane(device).expect("plane exists").clone();
    let mut with_cache = NetworkSetup::new(vec![cached_plane]);
    let mut without_cache =
        NetworkSetup::new(vec![DevicePlane::new("ToR", clickinc::device::DeviceModel::tofino())]);

    // Deployed programs only process traffic carrying their tenant id.
    let user = controller.numeric_id_of("kvs_0").expect("kvs_0 is deployed");
    let config = KvsConfig {
        requests: 5000,
        keys: 2000,
        cached_keys: 128,
        skew: 1.1,
        seed: 3,
        user,
        cache_table: Some("kvs_0_cache".to_string()),
    };
    let cached = run_kvs_scenario(&mut with_cache, &config);
    let baseline = run_kvs_scenario(&mut without_cache, &config);

    println!("\n{:<22} {:>12} {:>12}", "", "with cache", "no cache");
    println!(
        "{:<22} {:>11.1}% {:>11.1}%",
        "cache hit ratio",
        cached.hit_ratio * 100.0,
        baseline.hit_ratio * 100.0
    );
    println!(
        "{:<22} {:>12} {:>12}",
        "requests at server", cached.server_requests, baseline.server_requests
    );
    println!(
        "{:<22} {:>10.0}ns {:>10.0}ns",
        "mean lookup latency", cached.mean_latency_ns, baseline.mean_latency_ns
    );
    assert!(cached.replies_correct, "cache replies must carry the correct values");
    assert!(
        cached.hit_ratio > 0.3,
        "the skewed workload should hit the deployed cache: {}",
        cached.hit_ratio
    );
    assert!(cached.mean_latency_ns < baseline.mean_latency_ns, "the cache must cut latency");
    println!("\nAll in-network replies carried the correct value for their key.");
}
