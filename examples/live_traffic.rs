//! Live reconfiguration under traffic: two KVS tenants serve a skewed
//! request stream on the sharded runtime engine while a third tenant's
//! gradient-aggregation program is deployed and removed mid-run through the
//! controller (paper §6, Fig. 14 — INC as a service).
//!
//! The same three-phase workload is run twice — once with the mid-run
//! deploy/remove, once without — and the resident tenants' telemetry is
//! compared: goodput, hit ratio and tail latency are bit-for-bit unaffected.
//!
//! Run with: `cargo run --release --example live_traffic`

use clickinc::lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc::topology::Topology;
use clickinc::{Controller, ServiceRequest};
use clickinc_ir::Value;
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MlAggWorkload, MlAggWorkloadConfig,
};
use clickinc_runtime::{
    attach_controller, EngineConfig, EngineHandle, TelemetryReport, TrafficEngine,
};

const SHARDS: usize = 4;
const REQUESTS: usize = 3000;

fn populate_cache(controller: &Controller, handle: &EngineHandle, user: &str, hot_keys: i64) {
    let table = format!("{user}_cache");
    for hop in controller.tenant_hops(user) {
        if hop.snippets.iter().any(|s| s.objects.iter().any(|o| o.name == table)) {
            for key in 0..hot_keys {
                handle.populate_table(
                    user,
                    &hop.device,
                    &table,
                    vec![Value::Int(key)],
                    vec![Value::Int(key * 1000 + 7)],
                );
            }
        }
    }
}

fn kvs_stream(user: &str, id: i64, seed: u64) -> KvsWorkload {
    KvsWorkload::new(KvsWorkloadConfig {
        tenant: user.to_string(),
        user_id: id,
        keys: 1000,
        skew: 1.1,
        requests: REQUESTS,
        rate_pps: 5_000_000.0,
        seed,
    })
}

/// Three traffic phases for the resident tenants; in the middle phase a
/// third tenant optionally arrives, aggregates 400 gradient packets
/// in-network, and leaves — all through `Controller::deploy`/`remove`.
fn run(reconfigure: bool) -> TelemetryReport {
    let engine = TrafficEngine::new(EngineConfig { shards: SHARDS, batch_size: 128 });
    let handle = engine.handle();
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    attach_controller(&mut controller, engine.handle());

    for (user, srcs) in [("kvs_a", ["pod0a", "pod1a"]), ("kvs_b", ["pod0b", "pod1b"])] {
        let t = kvs_template(user, KvsParams { cache_depth: 2000, ..Default::default() });
        controller.deploy(ServiceRequest::from_template(t, &srcs, "pod2b")).unwrap();
        populate_cache(&controller, &handle, user, 64);
    }
    let id_a = controller.numeric_id_of("kvs_a").unwrap();
    let id_b = controller.numeric_id_of("kvs_b").unwrap();
    let mut wl_a = kvs_stream("kvs_a", id_a, 5);
    let mut wl_b = kvs_stream("kvs_b", id_b, 6);

    // phase 1: both residents flowing
    handle.run_workload(&mut wl_a, REQUESTS / 3, 128);
    handle.run_workload(&mut wl_b, REQUESTS / 3, 128);

    if reconfigure {
        let t = mlagg_template(
            "agg_c",
            MlAggParams { dims: 16, num_aggregators: 1024, ..Default::default() },
        );
        controller.deploy(ServiceRequest::from_template(t, &["pod1a", "pod1b"], "pod2a")).unwrap();
        let id_c = controller.numeric_id_of("agg_c").unwrap();
        let mut wl_c = MlAggWorkload::new(MlAggWorkloadConfig {
            tenant: "agg_c".to_string(),
            user_id: id_c,
            workers: 4,
            rounds: 100,
            dims: 16,
            rate_pps: 5_000_000.0,
            seed: 7,
            ..Default::default()
        });
        handle.run_workload(&mut wl_c, usize::MAX, 128);
    }

    // phase 2: residents keep flowing next to (or without) the newcomer
    handle.run_workload(&mut wl_a, REQUESTS / 3, 128);
    handle.run_workload(&mut wl_b, REQUESTS / 3, 128);

    if reconfigure {
        controller.remove("agg_c").unwrap();
    }

    // phase 3: after the teardown
    handle.run_workload(&mut wl_a, usize::MAX, 128);
    handle.run_workload(&mut wl_b, usize::MAX, 128);
    handle.flush();
    engine.finish().telemetry
}

fn main() {
    println!("=== Live reconfiguration under traffic ({SHARDS} shards) ===\n");
    let reconfigured = run(true);
    let quiet = run(false);

    let agg = reconfigured.tenant("agg_c").expect("transient tenant served");
    println!(
        "transient tenant agg_c: {} packets, {} in-network aggregations, {} absorbed, \
         goodput {:.2} Gbps",
        agg.packets, agg.hits, agg.drops, agg.goodput_gbps
    );

    println!(
        "\n{:<8} {:>10} {:>11} {:>14} {:>12} {:>12}  disruption",
        "tenant", "requests", "hit ratio", "goodput Gbps", "p50 ns", "p99 ns"
    );
    for user in ["kvs_a", "kvs_b"] {
        let with = reconfigured.tenant(user).expect("resident tenant served");
        let without = quiet.tenant(user).expect("resident tenant served");
        let unaffected = with == without;
        println!(
            "{:<8} {:>10} {:>11.3} {:>14.3} {:>12} {:>12}  {}",
            user,
            with.packets,
            with.hit_ratio,
            with.goodput_gbps,
            with.latency_p50_ns,
            with.latency_p99_ns,
            if unaffected { "none (bit-for-bit identical)" } else { "DISTURBED" }
        );
        assert!(unaffected, "co-resident tenant {user} must not observe the reconfiguration");
        assert!(with.hit_ratio > 0.3, "hot keys are answered in-network");
    }

    println!("\nTelemetry JSON (agg_c excerpt):");
    for line in reconfigured.to_json().lines().take(18) {
        println!("  {line}");
    }
    println!("  ...");
}
