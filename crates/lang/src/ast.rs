//! Abstract syntax tree of the ClickINC language (paper Fig. 5 grammar).

use std::fmt;

/// Binary arithmetic / bit operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement `~`.
    Invert,
    /// Logical `not`.
    Not,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Boolean connectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    /// `and`
    And,
    /// `or`
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `None`.
    NoneLit,
    /// Bare identifier.
    Name(String),
    /// Attribute access, e.g. `hdr.key` or `agg_data_t.read`.
    Attribute {
        /// Object expression.
        value: Box<Expr>,
        /// Attribute name.
        attr: String,
    },
    /// Indexing, e.g. `hdr.feat[index]`.
    Index {
        /// Indexed expression.
        value: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Function / constructor / method call.
    Call {
        /// Callee expression (a name, attribute or nested call).
        func: Box<Expr>,
        /// Positional arguments.
        args: Vec<Expr>,
        /// Keyword arguments.
        kwargs: Vec<(String, Expr)>,
    },
    /// Binary arithmetic / bit operation.
    BinOp {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Comparison.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `and` / `or` chain.
    BoolChain {
        /// Connective.
        op: BoolOp,
        /// Operands (two or more).
        values: Vec<Expr>,
    },
    /// List literal.
    List(Vec<Expr>),
    /// Dict literal (used by `back(hdr={...})`-style calls).
    Dict(Vec<(Expr, Expr)>),
}

/// A plain named call destructured by [`Expr::as_named_call`]:
/// `(name, positional args, keyword args)`.
pub type NamedCall<'a> = (&'a str, &'a [Expr], &'a [(String, Expr)]);

impl Expr {
    /// Convenience constructor for names.
    pub fn name(s: impl Into<String>) -> Expr {
        Expr::Name(s.into())
    }

    /// Whether the expression is the header object access `hdr.<field>`
    /// (possibly indexed); returns the field name if so.
    pub fn as_header_field(&self) -> Option<&str> {
        match self {
            Expr::Attribute { value, attr } => match value.as_ref() {
                Expr::Name(n) if n == "hdr" => Some(attr),
                _ => None,
            },
            Expr::Index { value, .. } => value.as_header_field(),
            _ => None,
        }
    }

    /// If this is a call of a plain named function, return `(name, args, kwargs)`.
    pub fn as_named_call(&self) -> Option<NamedCall<'_>> {
        match self {
            Expr::Call { func, args, kwargs } => match func.as_ref() {
                Expr::Name(n) => Some((n.as_str(), args, kwargs)),
                _ => None,
            },
            _ => None,
        }
    }

    /// Evaluate the expression if it is a compile-time integer constant
    /// (literals combined by arithmetic); used by the loop unroller.
    pub fn const_int(&self) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Bool(b) => Some(i64::from(*b)),
            Expr::Unary { op: UnaryOp::Neg, operand } => operand.const_int().map(|v| -v),
            Expr::Unary { op: UnaryOp::Invert, operand } => operand.const_int().map(|v| !v),
            Expr::BinOp { op, lhs, rhs } => {
                let a = lhs.const_int()?;
                let b = rhs.const_int()?;
                Some(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div | BinOp::FloorDiv => {
                        if b == 0 {
                            return None;
                        }
                        a / b
                    }
                    BinOp::Mod => {
                        if b == 0 {
                            return None;
                        }
                        a % b
                    }
                    BinOp::Pow => a.checked_pow(u32::try_from(b).ok()?)?,
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::Shl => a.checked_shl(u32::try_from(b).ok()?)?,
                    BinOp::Shr => a.checked_shr(u32::try_from(b).ok()?)?,
                })
            }
            _ => None,
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = value` (single target) or tuple-free multiple assignment
    /// `a = b = value` flattened into a list of targets.
    Assign {
        /// Assignment targets (names, attributes, or indexed expressions).
        targets: Vec<Expr>,
        /// Assigned value.
        value: Expr,
    },
    /// `target op= value`.
    AugAssign {
        /// Target.
        target: Expr,
        /// Operator (`+` for `+=`, `-` for `-=`).
        op: BinOp,
        /// Value.
        value: Expr,
    },
    /// A bare expression statement (typically a primitive call like `drop()`).
    ExprStmt(Expr),
    /// `if cond: body [elif ...] [else: orelse]` — `elif` chains are desugared
    /// into nested `If` inside `orelse`.
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch statements.
        body: Vec<Stmt>,
        /// Else-branch statements (possibly empty).
        orelse: Vec<Stmt>,
    },
    /// `for var in iter: body`.
    For {
        /// Loop variable name.
        var: String,
        /// Iterated expression (must be `range(...)` or a constant list for the
        /// frontend to unroll it).
        iter: Expr,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `from module import *` / `import module`.
    Import {
        /// Module name.
        module: String,
    },
    /// `def name(params): body` — user-defined helper functions, inlined by the
    /// frontend.
    FuncDef {
        /// Function name.
        name: String,
        /// Parameter names.
        params: Vec<String>,
        /// Body statements.
        body: Vec<Stmt>,
    },
    /// `return expr`.
    Return(Option<Expr>),
}

/// A parsed ClickINC source program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Top-level statements.
    pub stmts: Vec<Stmt>,
}

impl Program {
    /// Total number of statements, counting nested bodies.
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { body, orelse, .. } => 1 + count(body) + count(orelse),
                    Stmt::For { body, .. } => 1 + count(body),
                    Stmt::FuncDef { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// All user-defined functions, by name.
    pub fn functions(&self) -> Vec<(&str, &[String], &[Stmt])> {
        self.stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::FuncDef { name, params, body } => {
                    Some((name.as_str(), params.as_slice(), body.as_slice()))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_field_detection() {
        let e = Expr::Attribute { value: Box::new(Expr::name("hdr")), attr: "key".into() };
        assert_eq!(e.as_header_field(), Some("key"));
        let indexed = Expr::Index { value: Box::new(e.clone()), index: Box::new(Expr::Int(3)) };
        assert_eq!(indexed.as_header_field(), Some("key"));
        let not_hdr = Expr::Attribute { value: Box::new(Expr::name("meta")), attr: "x".into() };
        assert_eq!(not_hdr.as_header_field(), None);
        assert_eq!(Expr::Int(1).as_header_field(), None);
    }

    #[test]
    fn named_call_extraction() {
        let call = Expr::Call {
            func: Box::new(Expr::name("range")),
            args: vec![Expr::Int(3)],
            kwargs: vec![],
        };
        let (name, args, _) = call.as_named_call().unwrap();
        assert_eq!(name, "range");
        assert_eq!(args.len(), 1);
        let method = Expr::Call {
            func: Box::new(Expr::Attribute {
                value: Box::new(Expr::name("tbl")),
                attr: "read".into(),
            }),
            args: vec![],
            kwargs: vec![],
        };
        assert!(method.as_named_call().is_none());
    }

    #[test]
    fn constant_folding() {
        let e = Expr::BinOp {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Int(4)),
            rhs: Box::new(Expr::BinOp {
                op: BinOp::Add,
                lhs: Box::new(Expr::Int(1)),
                rhs: Box::new(Expr::Int(2)),
            }),
        };
        assert_eq!(e.const_int(), Some(12));
        let div0 = Expr::BinOp {
            op: BinOp::Div,
            lhs: Box::new(Expr::Int(4)),
            rhs: Box::new(Expr::Int(0)),
        };
        assert_eq!(div0.const_int(), None);
        assert_eq!(Expr::name("x").const_int(), None);
        let shift = Expr::BinOp {
            op: BinOp::Shl,
            lhs: Box::new(Expr::Int(1)),
            rhs: Box::new(Expr::Int(4)),
        };
        assert_eq!(shift.const_int(), Some(16));
        let pow = Expr::BinOp {
            op: BinOp::Pow,
            lhs: Box::new(Expr::Int(2)),
            rhs: Box::new(Expr::Int(10)),
        };
        assert_eq!(pow.const_int(), Some(1024));
        let neg = Expr::Unary { op: UnaryOp::Neg, operand: Box::new(Expr::Int(5)) };
        assert_eq!(neg.const_int(), Some(-5));
    }

    #[test]
    fn statement_count_recurses() {
        let p = Program {
            stmts: vec![
                Stmt::Assign { targets: vec![Expr::name("x")], value: Expr::Int(1) },
                Stmt::If {
                    cond: Expr::Bool(true),
                    body: vec![Stmt::ExprStmt(Expr::Int(1))],
                    orelse: vec![Stmt::ExprStmt(Expr::Int(2))],
                },
                Stmt::For {
                    var: "i".into(),
                    iter: Expr::Int(0),
                    body: vec![Stmt::ExprStmt(Expr::Int(3))],
                },
            ],
        };
        assert_eq!(p.statement_count(), 6);
    }

    #[test]
    fn functions_listing() {
        let p = Program {
            stmts: vec![
                Stmt::FuncDef {
                    name: "comp".into(),
                    params: vec!["a".into(), "b".into()],
                    body: vec![Stmt::Return(Some(Expr::name("a")))],
                },
                Stmt::Assign { targets: vec![Expr::name("x")], value: Expr::Int(1) },
            ],
        };
        let fns = p.functions();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].0, "comp");
        assert_eq!(fns[0].1.len(), 2);
    }

    #[test]
    fn operator_display() {
        assert_eq!(BinOp::FloorDiv.to_string(), "//");
        assert_eq!(CmpOp::Ge.to_string(), ">=");
    }
}
