//! # clickinc-ir — the platform-independent intermediate representation
//!
//! This crate implements the ClickINC IR described in §4.2 and Appendix A.4 of the
//! paper: a flat, sequentially-executed instruction set (no `goto`/`jump`) that the
//! compiler frontend lowers ClickINC programs into, that the placement engine
//! distributes over heterogeneous devices, and that the backends translate into
//! device-specific programs.
//!
//! The main pieces are:
//!
//! * [`types`] — value types, widths and runtime values shared with the emulator.
//! * [`object`] — declarations of the stateful INC objects (Array, Table, Sketch,
//!   Seq, Hash, Crypto) that instructions operate on (paper Fig. 5 "Object").
//! * [`instr`] — the instruction set itself (paper Fig. 17) including guards
//!   (predicated execution, the result of the frontend's if-conversion).
//! * [`capability`] — the 13 device-capability classes of Table 9 and the
//!   functional-unit list of Table 8, plus the classifier that assigns a class to
//!   every instruction.
//! * [`resource`] — the generic resource-demand vector used by the device models.
//! * [`fnv`] — the stable FNV-1a digest every fingerprint in the system
//!   (object stores, placement plans, service requests, shard hashing) shares.
//! * [`program`] — the [`IrProgram`] container with validation and queries.
//! * [`deps`] — read/write-set extraction and dependency-edge computation
//!   (including the mutual dependency of all instructions sharing a stateful
//!   object, paper §5.2 step 1).
//! * [`builder`] — an ergonomic builder used by the templates, tests and examples.
//! * [`eval`] — the reference ALU/compare semantics shared by the emulator's
//!   interpreter, the register VM and the optimizer's constant folder.
//! * [`analysis`] — dataflow (def-use, reaching definitions, liveness), the
//!   shared forward taint lattice behind the runtime's sharding decision, and
//!   the verifier pass pipeline with structured diagnostics.

pub mod analysis;
pub mod builder;
pub mod capability;
pub mod deps;
pub mod error;
pub mod eval;
pub mod fnv;
pub mod instr;
pub mod object;
pub mod program;
pub mod resource;
pub mod types;

pub use analysis::{
    Diagnostic, DiagnosticSet, Optimizer, PassContext, PassManager, Severity, ShardingDecision,
    StateProfile, TransformPass,
};
pub use builder::ProgramBuilder;
pub use capability::{classify_instruction, CapabilityClass, FunctionalUnit};
pub use deps::{dependency_edges, DependencyKind, ReadWriteSet};
pub use error::IrError;
pub use fnv::Fnv;
pub use instr::{AluOp, CmpOp, Guard, InstrId, Instruction, OpCode, Operand, Predicate};
pub use object::{CryptoAlgo, HashAlgo, MatchKind, ObjectDecl, ObjectKind, SketchKind};
pub use program::{HeaderFieldDecl, IrProgram};
pub use resource::{Resource, ResourceVector};
pub use types::{Value, ValueType};
