//! Engine-backed scenario drivers: the paper's KVS and sparse-MLAgg
//! workloads (Figs. 7/13) deployed through the [`ClickIncService`] facade
//! and served by the sharded traffic engine.
//!
//! The single-threaded scenario loop in `clickinc-emulator` remains as the
//! path-shape ablation (it is what sweeps the five Fig. 13 device chains);
//! *this* module is the default serving path: programs are solved by the
//! service's planner (the batch fans out over worker threads), admitted
//! under a provider resource-floor policy, committed transactionally,
//! mirrored onto the engine's shards, and loaded with the open-loop seeded
//! workload generators — no manual hook wiring anywhere.

use clickinc::{ClickIncError, ClickIncService, ResourceFloor, ServiceRequest};
use clickinc_emulator::kvs_backend_value;
use clickinc_ir::Value;
use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MlAggWorkload, MlAggWorkloadConfig,
};
use clickinc_runtime::{EngineConfig, TenantStats};
use clickinc_topology::Topology;
use std::collections::BTreeMap;

/// Sizing of the engine-served KVS + MLAgg scenario pair.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Engine shard worker threads.
    pub shards: usize,
    /// Packets per device-queue batch.
    pub batch_size: usize,
    /// KVS requests to serve.
    pub kvs_requests: usize,
    /// KVS key universe size.
    pub kvs_keys: usize,
    /// KVS Zipf skew exponent.
    pub kvs_skew: f64,
    /// Hot keys pre-installed in the in-network cache.
    pub hot_keys: i64,
    /// Gradient-aggregation rounds.
    pub agg_rounds: usize,
    /// Workers contributing per aggregation round.
    pub agg_workers: usize,
    /// Parameter-vector dimensions per gradient packet.
    pub dims: u32,
    /// Offered load per tenant in packets per second (virtual clock).
    pub rate_pps: f64,
    /// Workload RNG seed.
    pub seed: u64,
    /// Admission floor: the batch is refused (typed
    /// [`ClickIncError::Rejected`]) if committing would push the
    /// network-wide remaining resource ratio below this value.
    pub admission_floor: f64,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            shards: 4,
            batch_size: 128,
            kvs_requests: 2000,
            kvs_keys: 1000,
            kvs_skew: 1.1,
            hot_keys: 64,
            agg_rounds: 200,
            agg_workers: 4,
            dims: 16,
            rate_pps: 5_000_000.0,
            seed: 17,
            admission_floor: 0.05,
        }
    }
}

/// What the engine-served scenario pair leaves behind.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Telemetry of the KVS tenant (`kvs_srv`).
    pub kvs: TenantStats,
    /// Telemetry of the MLAgg tenant (`mlagg_srv`).
    pub mlagg: TenantStats,
    /// Final object-store fingerprints per device, merged across shards.
    pub store_fingerprints: BTreeMap<String, u64>,
}

/// Deploy the paper's KVS and sparse-MLAgg applications through the
/// [`ClickIncService`] facade (one transactional batch) and serve both
/// seeded open-loop workloads on the sharded engine.
///
/// Returns per-tenant telemetry and the final store fingerprints; a fixed
/// config produces bit-identical reports regardless of the shard count.
pub fn serve_fig13_workloads(config: &ServingConfig) -> Result<ServingReport, ClickIncError> {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig { shards: config.shards, batch_size: config.batch_size },
    )?;

    // both applications land (or neither does): one all-or-nothing batch
    // through the planner — the two solves fan out over worker threads, and
    // every commit passes the provider's resource-floor admission policy
    let planner = service
        .planner()
        .with_policy(ResourceFloor { min_remaining_ratio: config.admission_floor });
    let handles = planner.deploy_all(vec![
        ServiceRequest::builder("kvs_srv")
            .template(kvs_template(
                "kvs_srv",
                KvsParams { cache_depth: 2000, ..Default::default() },
            ))
            .from_("pod0a")
            .from_("pod1a")
            .to("pod2b")
            .build()?,
        ServiceRequest::builder("mlagg_srv")
            .template(mlagg_template(
                "mlagg_srv",
                MlAggParams {
                    dims: config.dims,
                    num_workers: config.agg_workers as u32,
                    num_aggregators: 1024,
                    is_float: false,
                },
            ))
            .from_("pod0b")
            .from_("pod1b")
            .to("pod2a")
            .build()?,
    ])?;
    let (kvs, mlagg) = (&handles[0], &handles[1]);

    // pre-populate the isolation-renamed cache wherever it was placed
    for key in 0..config.hot_keys {
        kvs.populate_table(
            "kvs_srv_cache",
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }

    let mut kvs_wl = KvsWorkload::new(KvsWorkloadConfig {
        tenant: kvs.user().to_string(),
        user_id: kvs.numeric_id(),
        keys: config.kvs_keys,
        skew: config.kvs_skew,
        requests: config.kvs_requests,
        rate_pps: config.rate_pps,
        seed: config.seed,
    });
    let mut agg_wl = MlAggWorkload::new(MlAggWorkloadConfig {
        tenant: mlagg.user().to_string(),
        user_id: mlagg.numeric_id(),
        workers: config.agg_workers,
        rounds: config.agg_rounds,
        dims: config.dims as usize,
        sparsity: 0.5,
        block_size: 8,
        rate_pps: config.rate_pps,
        seed: config.seed + 1,
    });
    kvs.run_workload(&mut kvs_wl, usize::MAX, config.batch_size);
    mlagg.run_workload(&mut agg_wl, usize::MAX, config.batch_size);
    service.flush();

    let outcome = service.finish();
    let stats = |user: &str| {
        outcome.telemetry.tenant(user).cloned().unwrap_or_else(|| panic!("{user} was served"))
    };
    Ok(ServingReport {
        kvs: stats("kvs_srv"),
        mlagg: stats("mlagg_srv"),
        store_fingerprints: outcome
            .stores
            .iter()
            .map(|(device, store)| (device.clone(), store.fingerprint()))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(shards: usize) -> ServingConfig {
        ServingConfig {
            shards,
            batch_size: 32,
            kvs_requests: 600,
            agg_rounds: 60,
            ..Default::default()
        }
    }

    #[test]
    fn the_engine_serves_both_applications_end_to_end() {
        let report = serve_fig13_workloads(&small(2)).expect("scenario serves");
        assert_eq!(report.kvs.packets, 600);
        assert_eq!(report.kvs.completed, 600);
        assert!(
            report.kvs.hit_ratio > 0.3,
            "hot keys answered in-network: {}",
            report.kvs.hit_ratio
        );
        assert!(report.mlagg.hits > 0, "completed aggregates bounce back");
        assert!(report.mlagg.drops > 0, "partial aggregates are absorbed in-network");
        assert!(report.kvs.goodput_gbps > 0.0 && report.mlagg.goodput_gbps > 0.0);
        assert!(!report.store_fingerprints.is_empty());
    }

    #[test]
    fn an_impossible_admission_floor_rejects_the_whole_batch() {
        let config = ServingConfig { admission_floor: 1.0, ..small(2) };
        let err = serve_fig13_workloads(&config).map(|_| ()).unwrap_err();
        assert!(
            matches!(&err, ClickIncError::Rejected { policy, .. } if policy == "resource_floor"),
            "got {err}"
        );
    }

    #[test]
    fn served_scenario_is_invariant_in_the_shard_count() {
        let one = serve_fig13_workloads(&small(1)).expect("1 shard serves");
        let four = serve_fig13_workloads(&small(4)).expect("4 shards serve");
        assert_eq!(one, four, "sharding is an optimization, not a semantics change");
    }
}
