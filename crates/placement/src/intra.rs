//! Intra-device instruction allocation (paper Algorithm 2).
//!
//! Given one device and the instructions of the blocks assigned to it, decide
//! whether they fit and, for pipeline devices, which stage each instruction
//! occupies.  The allocation must respect:
//!
//! * **capability** — every instruction's class must be supported by the device
//!   (or its bypass accelerator);
//! * **dependencies** — on a pipeline, an instruction must sit in a strictly
//!   later stage than the instructions it depends on (packets never flow
//!   backwards; recirculation is not allowed, Appendix D);
//! * **resources** — per-stage resource capacities (pipeline) or the aggregate
//!   capacity (RTC / hybrid devices), netted against what previous tenants
//!   already consumed.
//!
//! The paper's Algorithm 2 enumerates instruction subsets with dominance
//! pruning; because the frontend produces SSA straight-line code, a greedy
//! earliest-stage assignment over a topological order achieves the same compact
//! placements (each stage is filled before the next is opened) and is what we
//! implement here.

use crate::network::PlacementDevice;
use clickinc_device::{instruction_demand, Architecture};
use clickinc_ir::{classify_instruction, DependencyKind, IrProgram, ResourceVector};
use std::collections::{BTreeMap, BTreeSet};

/// The result of allocating a set of instructions onto one device.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAllocation {
    /// Stage index assigned to each instruction (instruction index → stage).
    /// RTC devices place everything in stage 0.
    pub stage_of: BTreeMap<usize, usize>,
    /// Number of stages actually used.
    pub stages_used: usize,
    /// Total resource demand of the allocation (per physical device).
    pub demand: ResourceVector,
}

impl StageAllocation {
    /// An empty allocation.
    pub fn empty() -> StageAllocation {
        StageAllocation {
            stage_of: BTreeMap::new(),
            stages_used: 0,
            demand: ResourceVector::zero(),
        }
    }

    /// Number of instructions allocated.
    pub fn len(&self) -> usize {
        self.stage_of.len()
    }

    /// Whether nothing was allocated.
    pub fn is_empty(&self) -> bool {
        self.stage_of.is_empty()
    }
}

/// Per-program facts [`allocate_stages`] re-derives on every call, hoisted so
/// the placement DP (which evaluates thousands of segments per solve) computes
/// them exactly once.  The answers are identical — the context is a cache of
/// pure derivations, not a different algorithm.
pub struct SegContext<'a> {
    program: &'a IrProgram,
    /// Capability class per instruction index.
    class_of: Vec<clickinc_ir::CapabilityClass>,
    /// Data-dependency predecessors per instruction index (program order).
    data_preds: Vec<Vec<usize>>,
}

impl<'a> SegContext<'a> {
    /// Precompute classes and data dependencies for `program`.
    pub fn new(program: &'a IrProgram) -> SegContext<'a> {
        let class_of = program
            .instructions
            .iter()
            .map(|i| classify_instruction(i, &program.objects))
            .collect();
        let mut data_preds: Vec<Vec<usize>> = vec![Vec::new(); program.instructions.len()];
        for (a, b, kind) in &program.dependencies() {
            if *kind == DependencyKind::Data {
                data_preds[*b].push(*a);
            }
        }
        SegContext { program, class_of, data_preds }
    }

    /// The program the context was built from.
    pub fn program(&self) -> &'a IrProgram {
        self.program
    }
}

/// Try to allocate `instrs` (indices into `program`) onto `device`.
///
/// Returns `None` if the device cannot execute them (capability violation) or
/// they do not fit (stage or resource exhaustion).
pub fn allocate_stages(
    device: &PlacementDevice,
    program: &IrProgram,
    instrs: &[usize],
) -> Option<StageAllocation> {
    allocate_stages_with(device, &SegContext::new(program), instrs)
}

/// [`allocate_stages`] with the per-program derivations supplied by a
/// pre-built [`SegContext`] — the form the placement DP calls in its inner
/// loop.
pub fn allocate_stages_with(
    device: &PlacementDevice,
    ctx: &SegContext<'_>,
    instrs: &[usize],
) -> Option<StageAllocation> {
    if instrs.is_empty() {
        return Some(StageAllocation::empty());
    }
    let program = ctx.program;
    // capability check (constraint 3 of §5.4)
    for &i in instrs {
        if !device.supports(ctx.class_of[i]) {
            return None;
        }
    }

    let model = &device.model;
    let assigned: BTreeSet<usize> = instrs.iter().copied().collect();
    // dependencies restricted to the assigned set
    let mut preds: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &b in instrs {
        for &a in &ctx.data_preds[b] {
            if assigned.contains(&a) {
                preds.entry(b).or_default().push(a);
            }
        }
    }

    // aggregate resource feasibility first (cheap reject, also the only check
    // for RTC devices)
    let total_demand = clickinc_device::block_demand(model, program, instrs);
    if !total_demand.fits_within(&device.available) {
        return None;
    }

    let stages = match model.arch {
        Architecture::Rtc => 1,
        _ => model.stages(),
    };
    if stages == 1 {
        let stage_of = instrs.iter().map(|&i| (i, 0usize)).collect();
        return Some(StageAllocation { stage_of, stages_used: 1, demand: total_demand });
    }

    // per-stage budget: total availability spread evenly over the stages (the
    // ledger tracks device-level consumption; assuming earlier tenants were
    // packed compactly this is the faithful per-stage view)
    let per_stage_budget = device.available.scaled(1.0 / stages as f64);

    // greedy earliest-stage placement over program order (which is a valid
    // topological order of the SSA data dependencies)
    // Per-stage packing only tracks the compute-side resources; object memory
    // (SRAM/TCAM/BRAM) physically spreads across stages on real chips and is
    // therefore checked once at device level by the aggregate test above.
    let mut order: Vec<usize> = instrs.to_vec();
    order.sort_unstable();
    let mut stage_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut stage_use: Vec<ResourceVector> = vec![ResourceVector::zero(); stages];

    for &i in &order {
        let instr = &program.instructions[i];
        let demand = instruction_demand(model, program, instr);
        let min_stage = preds
            .get(&i)
            .map(|ps| {
                ps.iter().map(|p| stage_of.get(p).map(|s| s + 1).unwrap_or(0)).max().unwrap_or(0)
            })
            .unwrap_or(0);
        let mut placed = false;
        for (s, use_slot) in stage_use.iter_mut().enumerate().take(stages).skip(min_stage) {
            let mut candidate = *use_slot;
            candidate += demand;
            if candidate.fits_within(&per_stage_budget) {
                *use_slot = candidate;
                stage_of.insert(i, s);
                placed = true;
                break;
            }
        }
        if !placed {
            return None;
        }
    }

    let stages_used = stage_of.values().copied().max().map(|s| s + 1).unwrap_or(0);
    Some(StageAllocation { stage_of, stages_used, demand: total_demand })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{PlacementNetwork, ResourceLedger};
    use clickinc_device::DeviceKind;
    use clickinc_ir::{AluOp, Operand, ProgramBuilder};
    use clickinc_topology::{reduce_for_traffic, Topology};

    fn single_device(kind: DeviceKind) -> PlacementDevice {
        let topo = Topology::chain(1, kind);
        let servers = topo.servers();
        let reduced = reduce_for_traffic(&topo, &[servers[0]], servers[1], &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        net.client[0].clone()
    }

    fn chain_program(n: usize) -> IrProgram {
        let mut b = ProgramBuilder::new("chain");
        let mut prev: Option<String> = None;
        for i in 0..n {
            let v = format!("v{i}");
            let lhs = prev.clone().map(Operand::var).unwrap_or_else(|| Operand::hdr("x"));
            b.alu(&v, AluOp::Add, lhs, Operand::int(1));
            prev = Some(v);
        }
        b.build().expect("test program is well-formed")
    }

    #[test]
    fn dependent_instructions_occupy_increasing_stages() {
        let dev = single_device(DeviceKind::Tofino);
        let program = chain_program(5);
        let instrs: Vec<usize> = (0..5).collect();
        let alloc = allocate_stages(&dev, &program, &instrs).expect("fits");
        assert_eq!(alloc.stages_used, 5, "a 5-long dependency chain needs 5 stages");
        for i in 1..5 {
            assert!(alloc.stage_of[&i] > alloc.stage_of[&(i - 1)]);
        }
        assert_eq!(alloc.len(), 5);
    }

    #[test]
    fn independent_instructions_share_a_stage() {
        let dev = single_device(DeviceKind::Tofino);
        let mut b = ProgramBuilder::new("indep");
        for i in 0..4 {
            b.alu(&format!("v{i}"), AluOp::Add, Operand::hdr("x"), Operand::int(i));
        }
        let program = b.build().expect("test program is well-formed");
        let alloc = allocate_stages(&dev, &program, &[0, 1, 2, 3]).expect("fits");
        assert_eq!(alloc.stages_used, 1);
    }

    #[test]
    fn chain_longer_than_pipeline_is_rejected() {
        let dev = single_device(DeviceKind::Tofino);
        let program = chain_program(dev.model.stages() + 3);
        let instrs: Vec<usize> = (0..program.len()).collect();
        assert!(allocate_stages(&dev, &program, &instrs).is_none());
    }

    #[test]
    fn rtc_devices_ignore_stage_ordering() {
        let dev = single_device(DeviceKind::NfpSmartNic);
        let program = chain_program(40);
        let instrs: Vec<usize> = (0..program.len()).collect();
        let alloc = allocate_stages(&dev, &program, &instrs).expect("NFP runs long chains");
        assert_eq!(alloc.stages_used, 1);
        assert!(alloc.stage_of.values().all(|s| *s == 0));
    }

    #[test]
    fn capability_violations_are_rejected() {
        let dev = single_device(DeviceKind::Tofino);
        let mut b = ProgramBuilder::new("float");
        b.falu("f", AluOp::Mul, Operand::hdr("a"), Operand::hdr("b"));
        let program = b.build().expect("test program is well-formed");
        assert!(allocate_stages(&dev, &program, &[0]).is_none(), "Tofino cannot run floats");
        let fpga = single_device(DeviceKind::FpgaSmartNic);
        assert!(allocate_stages(&fpga, &program, &[0]).is_some());
    }

    #[test]
    fn oversized_state_is_rejected() {
        let dev = single_device(DeviceKind::Tofino);
        let mut b = ProgramBuilder::new("huge");
        // far beyond a Tofino's SRAM (hundreds of MB)
        b.array("huge", 64, 1_000_000, 128);
        b.get("v", "huge", vec![Operand::hdr("k")]);
        let program = b.build().expect("test program is well-formed");
        assert!(allocate_stages(&dev, &program, &[0]).is_none());
    }

    #[test]
    fn empty_allocation_is_trivially_ok() {
        let dev = single_device(DeviceKind::Tofino);
        let program = chain_program(1);
        let alloc = allocate_stages(&dev, &program, &[]).unwrap();
        assert!(alloc.is_empty());
        assert_eq!(alloc.stages_used, 0);
        assert!(alloc.demand.is_zero());
    }

    #[test]
    fn bypass_accelerator_unlocks_unsupported_classes() {
        // a TD4 with an FPGA bypass (as on Agg4/Agg5 of the emulation topology)
        let topo = Topology::emulation_topology();
        let src = topo.find("pod0a").unwrap();
        let dst = topo.find("pod2b").unwrap();
        let reduced = reduce_for_traffic(&topo, &[src], dst, &[]);
        let net = PlacementNetwork::from_reduced(&topo, &reduced, &ResourceLedger::new());
        let agg = net.server.iter().find(|d| d.bypass.is_some()).expect("bypass agg");
        let mut b = ProgramBuilder::new("float");
        b.falu("f", AluOp::Add, Operand::hdr("a"), Operand::hdr("b"));
        let program = b.build().expect("test program is well-formed");
        assert!(allocate_stages(agg, &program, &[0]).is_some());
    }
}
