//! The control loop: snapshot → delta → decide → apply.

use crate::adaptive::actions::{AdaptAction, Saturation};
use crate::adaptive::budget::fair_budgets;
use crate::adaptive::policy::{AdaptivePolicy, EpochDelta};
use crate::engine::EngineHandle;
use crate::telemetry::TelemetryReport;
use crate::tenant::ShardingMode;
use std::collections::BTreeMap;

/// What the controller remembers about one tracked tenant.
#[derive(Debug, Clone)]
struct Profile {
    /// The most parallel mode the tenant's state profile admits (derived by
    /// the service layer's `sharding_mode_for` analysis).  A `Reshard` never
    /// targets anything this does not allow.
    eligible: ShardingMode,
    /// The mode the tenant currently runs under.
    current: ShardingMode,
    /// Whether the loop (not the deployer) put the tenant into `ByFlow`, so
    /// idle reclamation only undoes the loop's own spreading.
    resharded_by_loop: bool,
    /// Epoch of the last reshard, for the cooldown gate.
    last_reshard_epoch: Option<u64>,
    /// Consecutive saturated epochs (reset whenever an epoch is calm).
    saturated_epochs: u64,
    /// Consecutive epochs with zero offered packets.
    idle_epochs: u64,
}

/// What one control-loop step observed and did.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveTick {
    /// The loop epoch this tick closed (1-based; the first tick only
    /// establishes the baseline snapshot and decides nothing).
    pub epoch: u64,
    /// Sequence number of the snapshot this tick observed.
    pub snapshot_seq: u64,
    /// Every action the policy decided on this epoch.
    pub actions: Vec<AdaptAction>,
    /// The subset applied directly on the engine (reshards, budget resizes).
    pub applied: Vec<AdaptAction>,
    /// `Replan` actions deferred to the service layer, which must route them
    /// through plan/commit so the verifier and admission chain gate them.
    pub replans: Vec<AdaptAction>,
}

/// The telemetry-driven reconfiguration loop.  Pure decision logic lives in
/// [`decide`](AdaptiveController::decide); [`step`](AdaptiveController::step)
/// wraps it with a snapshot and applies the engine-level actions.
///
/// The controller deliberately does not own a thread or a timer: the caller
/// (a serving loop, a bench harness, the service facade) invokes `step` at
/// whatever cadence fits — between workload phases, on a wall-clock tick, or
/// after every N injected batches.  That keeps every experiment
/// deterministic and the loop trivially testable.
#[derive(Debug)]
pub struct AdaptiveController {
    policy: AdaptivePolicy,
    profiles: BTreeMap<String, Profile>,
    prev: Option<TelemetryReport>,
    epoch: u64,
}

impl AdaptiveController {
    /// A controller with the given thresholds, tracking no tenants yet.
    pub fn new(policy: AdaptivePolicy) -> AdaptiveController {
        AdaptiveController { policy, profiles: BTreeMap::new(), prev: None, epoch: 0 }
    }

    /// The active thresholds.
    pub fn policy(&self) -> &AdaptivePolicy {
        &self.policy
    }

    /// Track a tenant: its current mode and the most parallel mode its state
    /// profile admits.  The loop only ever reshards within `eligible` — an
    /// ineligible tenant (`eligible == ByTenant`) is never flow-sharded, no
    /// matter how saturated it gets.
    pub fn track(&mut self, user: &str, current: ShardingMode, eligible: ShardingMode) {
        self.profiles.insert(
            user.to_string(),
            Profile {
                eligible,
                current,
                resharded_by_loop: false,
                last_reshard_epoch: None,
                saturated_epochs: 0,
                idle_epochs: 0,
            },
        );
    }

    /// Stop tracking a tenant (removed from the engine).
    pub fn forget(&mut self, user: &str) {
        self.profiles.remove(user);
    }

    /// The mode the controller believes a tracked tenant currently runs
    /// under.
    pub fn current_mode(&self, user: &str) -> Option<&ShardingMode> {
        self.profiles.get(user).map(|p| &p.current)
    }

    /// Record that the service re-placed (or otherwise re-deployed) a
    /// tenant: reset its saturation history and adopt the new mode.
    pub fn note_replaced(&mut self, user: &str, current: ShardingMode) {
        if let Some(profile) = self.profiles.get_mut(user) {
            profile.current = current;
            profile.resharded_by_loop = false;
            profile.saturated_epochs = 0;
            profile.idle_epochs = 0;
        }
    }

    /// Close an epoch: compute deltas against the previous snapshot and
    /// decide on actions.  Pure — nothing is applied; the internal per-tenant
    /// history (cooldowns, saturation streaks) *is* advanced, and `Reshard`
    /// decisions update the profile's `current` mode optimistically (the
    /// caller applies them or the engine rejects them as no-ops).
    ///
    /// `capacity` is the per-shard queue bound, `shards` the worker count and
    /// `budgets` each tracked tenant's active ingress budget — all engine
    /// facts [`step`](AdaptiveController::step) gathers automatically.
    pub fn decide(
        &mut self,
        report: &TelemetryReport,
        capacity: u64,
        shards: usize,
        budgets: &BTreeMap<String, u64>,
    ) -> Vec<AdaptAction> {
        self.epoch += 1;
        let Some(prev) = self.prev.replace(report.clone()) else {
            // first observation: baseline only
            return Vec::new();
        };
        let delta = EpochDelta::between(&prev, report);
        let mut actions = Vec::new();
        let mut rebalance = false;
        let mut demand: BTreeMap<String, u64> = BTreeMap::new();
        for (user, profile) in self.profiles.iter_mut() {
            let d = delta.tenants.get(user).cloned().unwrap_or_default();
            demand.insert(user.clone(), d.offered());
            // device-fault trigger: packets lost at a dead or flaky device
            // cannot be fixed by congestion levers (resharding spreads load,
            // budgets shape ingress — neither moves the tenant off the
            // failed device), so escalate straight to a replan, bypassing
            // the volume gate, cooldowns and the escalation ladder
            if self.policy.fault_replan_lost > 0 && d.fault_lost >= self.policy.fault_replan_lost {
                let why = Saturation {
                    offered: d.offered(),
                    shed: d.shed,
                    backpressure_waits: d.backpressure_waits,
                    queue_depth_hwm: d.queue_depth_hwm,
                    queue_capacity: capacity,
                    fault_lost: d.fault_lost,
                };
                actions.push(AdaptAction::Replan { user: user.clone(), why });
                profile.saturated_epochs = 0;
                profile.idle_epochs = 0;
                continue;
            }
            if d.offered() == 0 {
                profile.saturated_epochs = 0;
                profile.idle_epochs += 1;
                let reclaim = self.policy.reclaim_idle_epochs;
                if reclaim > 0
                    && profile.idle_epochs >= reclaim
                    && profile.resharded_by_loop
                    && profile.current.is_by_flow()
                {
                    let why = Saturation { queue_capacity: capacity, ..Default::default() };
                    actions.push(AdaptAction::Reshard {
                        user: user.clone(),
                        to: ShardingMode::ByTenant,
                        why,
                    });
                    profile.current = ShardingMode::ByTenant;
                    profile.resharded_by_loop = false;
                    profile.last_reshard_epoch = Some(self.epoch);
                    profile.idle_epochs = 0;
                }
                continue;
            }
            profile.idle_epochs = 0;
            if d.offered() < self.policy.min_epoch_packets {
                continue;
            }
            let why = Saturation {
                offered: d.offered(),
                shed: d.shed,
                backpressure_waits: d.backpressure_waits,
                queue_depth_hwm: d.queue_depth_hwm,
                queue_capacity: capacity,
                fault_lost: d.fault_lost,
            };
            let saturated = why.congestion_ratio() > self.policy.congestion_saturation
                || why.hwm_ratio() >= self.policy.hwm_saturation;
            if !saturated {
                profile.saturated_epochs = 0;
                continue;
            }
            profile.saturated_epochs += 1;
            rebalance = true;
            let cooling = profile
                .last_reshard_epoch
                .is_some_and(|at| self.epoch.saturating_sub(at) <= self.policy.cooldown_epochs);
            if cooling {
                continue;
            }
            // first lever: spread a flow-shardable tenant across every shard
            if !profile.current.is_by_flow() && profile.eligible.is_by_flow() {
                actions.push(AdaptAction::Reshard {
                    user: user.clone(),
                    to: profile.eligible.clone(),
                    why,
                });
                profile.current = profile.eligible.clone();
                profile.resharded_by_loop = true;
                profile.last_reshard_epoch = Some(self.epoch);
                profile.saturated_epochs = 0;
                continue;
            }
            // out of engine-level levers: persistent saturation escalates to
            // a re-placement through the gated service path
            if profile.saturated_epochs >= self.policy.replan_epochs {
                actions.push(AdaptAction::Replan { user: user.clone(), why });
                profile.saturated_epochs = 0;
            }
        }
        // second lever: rebalance every tracked tenant's ingress budget to
        // its weighted fair share of the aggregate capacity
        if rebalance {
            let total = capacity.saturating_mul(shards as u64);
            let fair = fair_budgets(total, self.policy.budget_floor, &demand);
            for (user, budget) in fair {
                if budgets.get(&user).copied() != Some(budget) {
                    let d = delta.tenants.get(&user).cloned().unwrap_or_default();
                    let why = Saturation {
                        offered: d.offered(),
                        shed: d.shed,
                        backpressure_waits: d.backpressure_waits,
                        queue_depth_hwm: d.queue_depth_hwm,
                        queue_capacity: capacity,
                        fault_lost: d.fault_lost,
                    };
                    actions.push(AdaptAction::ResizeBudget { user, budget, why });
                }
            }
        }
        actions
    }

    /// One full control-loop turn against a live engine: snapshot the
    /// telemetry, decide, apply the engine-level actions (reshards and
    /// budget resizes), and hand `Replan`s back for the service layer.
    pub fn step(&mut self, engine: &EngineHandle) -> AdaptiveTick {
        let report = engine.telemetry();
        let capacity = engine.queue_capacity() as u64;
        let shards = engine.shards();
        let budgets: BTreeMap<String, u64> = self
            .profiles
            .keys()
            .filter_map(|user| engine.tenant_budget(user).map(|b| (user.clone(), b)))
            .collect();
        let snapshot_seq = report.snapshot_seq;
        let actions = self.decide(&report, capacity, shards, &budgets);
        let mut applied = Vec::new();
        let mut replans = Vec::new();
        for action in &actions {
            match action {
                AdaptAction::Reshard { user, to, .. } => {
                    if engine.reshard_tenant(user, to.clone()) {
                        applied.push(action.clone());
                    }
                }
                AdaptAction::ResizeBudget { user, budget, .. } => {
                    if engine.set_tenant_budget(user, *budget) {
                        applied.push(action.clone());
                    }
                }
                AdaptAction::Replan { .. } => replans.push(action.clone()),
            }
        }
        AdaptiveTick { epoch: self.epoch, snapshot_seq, actions, applied, replans }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{TelemetryRegistry, TenantCounters};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    const CAP: u64 = 100;
    const SHARDS: usize = 4;

    fn by_key() -> ShardingMode {
        ShardingMode::ByFlow { key_fields: vec!["key".into()] }
    }

    struct Harness {
        registry: TelemetryRegistry,
        counters: BTreeMap<String, Arc<TenantCounters>>,
        controller: AdaptiveController,
        budgets: BTreeMap<String, u64>,
    }

    impl Harness {
        fn new(policy: AdaptivePolicy, tenants: &[(&str, ShardingMode, ShardingMode)]) -> Harness {
            let registry = TelemetryRegistry::default();
            let mut counters = BTreeMap::new();
            let mut controller = AdaptiveController::new(policy);
            let mut budgets = BTreeMap::new();
            for (user, current, eligible) in tenants {
                let block = Arc::new(TenantCounters::new(1));
                registry.register(user, Arc::clone(&block));
                counters.insert(user.to_string(), block);
                controller.track(user, current.clone(), eligible.clone());
                budgets.insert(user.to_string(), CAP * SHARDS as u64);
            }
            Harness { registry, counters, controller, budgets }
        }

        fn offer(&self, user: &str, admitted: u64, shed: u64) {
            let c = &self.counters[user];
            c.packets.fetch_add(admitted, Ordering::Relaxed);
            c.shed.fetch_add(shed, Ordering::Relaxed);
        }

        fn tick(&mut self) -> Vec<AdaptAction> {
            let report = self.registry.snapshot();
            self.controller.decide(&report, CAP, SHARDS, &self.budgets)
        }
    }

    #[test]
    fn saturation_reshards_an_eligible_tenant_and_rebalances_budgets() {
        let mut h = Harness::new(
            AdaptivePolicy::default(),
            &[
                ("bg", ShardingMode::ByTenant, ShardingMode::ByTenant),
                ("hot", ShardingMode::ByTenant, by_key()),
            ],
        );
        assert!(h.tick().is_empty(), "first tick is baseline only");
        h.offer("hot", 100, 60);
        h.offer("bg", 50, 0);
        let actions = h.tick();
        let reshards: Vec<_> =
            actions.iter().filter(|a| matches!(a, AdaptAction::Reshard { .. })).collect();
        assert_eq!(reshards.len(), 1, "exactly the hot tenant reshards: {actions:?}");
        assert_eq!(reshards[0].user(), "hot");
        assert!(matches!(reshards[0], AdaptAction::Reshard { to, .. } if to == &by_key()));
        assert_eq!(h.controller.current_mode("hot"), Some(&by_key()));
        // the fair-share pass also resized budgets away from the default
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, AdaptAction::ResizeBudget { user, .. } if user == "hot")),
            "budget rebalance rides along: {actions:?}"
        );
    }

    #[test]
    fn ineligible_tenants_are_never_flow_sharded_and_escalate_to_replan() {
        let policy = AdaptivePolicy { replan_epochs: 2, ..Default::default() };
        let mut h =
            Harness::new(policy, &[("pinned", ShardingMode::ByTenant, ShardingMode::ByTenant)]);
        h.tick();
        let mut replans = 0;
        for epoch in 0..4 {
            h.offer("pinned", 100, 80);
            let actions = h.tick();
            assert!(
                actions.iter().all(|a| !matches!(a, AdaptAction::Reshard { .. })),
                "epoch {epoch}: an ineligible tenant must never reshard: {actions:?}"
            );
            replans += actions.iter().filter(|a| matches!(a, AdaptAction::Replan { .. })).count();
        }
        // saturated for 4 epochs with replan_epochs = 2 → exactly 2 escalations
        assert_eq!(replans, 2);
    }

    #[test]
    fn cooldown_suppresses_immediate_resharding_back() {
        let policy = AdaptivePolicy { cooldown_epochs: 2, ..Default::default() };
        let mut h = Harness::new(policy, &[("hot", ShardingMode::ByTenant, by_key())]);
        h.tick();
        h.offer("hot", 100, 60);
        let first: Vec<_> = h.tick();
        assert!(first.iter().any(|a| matches!(a, AdaptAction::Reshard { .. })));
        // still saturated the very next epoch: inside the cooldown no second
        // reshard (and no replan yet)
        h.offer("hot", 100, 60);
        let second = h.tick();
        assert!(second.iter().all(|a| !matches!(a, AdaptAction::Reshard { .. })));
    }

    #[test]
    fn calm_epochs_decide_nothing_and_idle_reclaim_consolidates() {
        let policy = AdaptivePolicy { reclaim_idle_epochs: 2, ..Default::default() };
        let mut h = Harness::new(policy, &[("hot", ShardingMode::ByTenant, by_key())]);
        h.tick();
        // calm traffic: under every threshold
        h.offer("hot", 1000, 0);
        assert!(h.tick().is_empty(), "no congestion, no action");
        // saturate → reshard to ByFlow
        h.offer("hot", 100, 60);
        assert!(h.tick().iter().any(|a| matches!(a, AdaptAction::Reshard { .. })));
        // two idle epochs → consolidated back to its home shard
        assert!(h.tick().is_empty(), "first idle epoch only counts");
        let actions = h.tick();
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, AdaptAction::Reshard { to: ShardingMode::ByTenant, .. })),
            "idle reclaim reshards back: {actions:?}"
        );
        assert_eq!(h.controller.current_mode("hot"), Some(&ShardingMode::ByTenant));
    }

    #[test]
    fn fault_losses_escalate_to_replan_immediately() {
        let mut h = Harness::new(
            AdaptivePolicy::default(),
            &[
                ("victim", ShardingMode::ByTenant, by_key()),
                ("bystander", ShardingMode::ByTenant, ShardingMode::ByTenant),
            ],
        );
        h.tick();
        // far below min_epoch_packets and with zero congestion — the fault
        // trigger must not care about either gate
        h.offer("victim", 10, 0);
        h.offer("bystander", 10, 0);
        h.counters["victim"].note_fault_loss(5_000);
        h.counters["victim"].note_fault_loss(6_000);
        let actions = h.tick();
        let replans: Vec<_> =
            actions.iter().filter(|a| matches!(a, AdaptAction::Replan { .. })).collect();
        assert_eq!(replans.len(), 1, "exactly the victim replans: {actions:?}");
        assert_eq!(replans[0].user(), "victim");
        assert!(matches!(
            replans[0],
            AdaptAction::Replan { why: Saturation { fault_lost: 2, .. }, .. }
        ));
        // the fault lever outranks resharding: no Reshard for the victim
        assert!(actions.iter().all(|a| !matches!(a, AdaptAction::Reshard { .. })));
        // a calm epoch later, the loop is quiet again
        h.offer("victim", 10, 0);
        assert!(h.tick().is_empty());
    }

    #[test]
    fn fault_trigger_can_be_disabled() {
        let policy = AdaptivePolicy { fault_replan_lost: 0, ..Default::default() };
        let mut h = Harness::new(policy, &[("victim", ShardingMode::ByTenant, by_key())]);
        h.tick();
        h.offer("victim", 10, 0);
        h.counters["victim"].note_fault_loss(5_000);
        assert!(h.tick().is_empty(), "fault_replan_lost = 0 disables the trigger");
    }

    #[test]
    fn stale_tenant_delta_is_skipped_after_removal() {
        // a tenant removed between the snapshot and the decision: its
        // counters still sit in the registry (telemetry keeps history), so
        // the delta names it — but the profile is gone and the loop must not
        // act on the stale movement
        let mut h = Harness::new(
            AdaptivePolicy::default(),
            &[
                ("gone", ShardingMode::ByTenant, by_key()),
                ("stays", ShardingMode::ByTenant, ShardingMode::ByTenant),
            ],
        );
        h.tick();
        // both tenants saturate hard; "gone" even loses packets to a fault
        h.offer("gone", 100, 90);
        h.counters["gone"].note_fault_loss(1_000);
        h.offer("stays", 1000, 0);
        h.controller.forget("gone");
        let actions = h.tick();
        assert!(
            actions.iter().all(|a| a.user() != "gone"),
            "no action may target a removed tenant: {actions:?}"
        );
        // and the inverse staleness: a tracked tenant missing from the delta
        // (snapshot raced its registration) takes the idle path, not a panic
        h.controller.track("unregistered", ShardingMode::ByTenant, by_key());
        let actions = h.tick();
        assert!(actions.iter().all(|a| a.user() != "unregistered"), "{actions:?}");
    }

    #[test]
    fn note_replaced_resets_history() {
        let mut h =
            Harness::new(AdaptivePolicy::default(), &[("t", ShardingMode::ByTenant, by_key())]);
        h.tick();
        h.offer("t", 100, 60);
        h.tick();
        h.controller.note_replaced("t", ShardingMode::ByTenant);
        assert_eq!(h.controller.current_mode("t"), Some(&ShardingMode::ByTenant));
        h.controller.forget("t");
        assert_eq!(h.controller.current_mode("t"), None);
    }
}
