//! Stateful INC object declarations.
//!
//! ClickINC programs operate on a small set of collective data types (paper
//! Fig. 5, "Object"): `Table`, `Array`, `Seq`, `Hash`, `Sketch` and `Crypto`.
//! Each is declared once per program and then operated on by primitives
//! (`get`, `write`, `count`, `del`, ...).  At the IR level the declaration carries
//! everything the placement engine needs to compute resource demand (depth, width,
//! match kind, statefulness) and everything the emulator needs to instantiate the
//! runtime state.

use crate::types::ValueType;
use std::fmt;

/// Matching discipline of a table object (paper Table 8: `_emt`, `_tmt`, `_lpmt`,
/// `_ram` index matching, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatchKind {
    /// Exact match on the full key.
    Exact,
    /// Ternary (wildcard) match, requires TCAM.
    Ternary,
    /// Longest-prefix match, requires TCAM (or algorithmic LPM).
    Lpm,
    /// Direct index match (the key *is* the index), `_ram` in Table 8.
    Index,
}

impl fmt::Display for MatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MatchKind::Exact => "exact",
            MatchKind::Ternary => "ternary",
            MatchKind::Lpm => "lpm",
            MatchKind::Index => "index",
        };
        write!(f, "{s}")
    }
}

/// Kind of approximate-membership / frequency sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SketchKind {
    /// Count-Min sketch: `rows` independent hash rows of `cols` counters.
    CountMin,
    /// Bloom filter: `rows` hash functions over a `cols`-bit array.
    Bloom,
}

impl fmt::Display for SketchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchKind::CountMin => write!(f, "count-min"),
            SketchKind::Bloom => write!(f, "bloom-filter"),
        }
    }
}

/// Hash algorithm families exposed by the devices (paper Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlgo {
    /// CRC-8.
    Crc8,
    /// CRC-16 (the default in most templates).
    Crc16,
    /// CRC-32.
    Crc32,
    /// Identity mapping (Tofino-only per Table 8).
    Identity,
}

impl HashAlgo {
    /// Output width in bits.
    pub fn output_bits(&self) -> u16 {
        match self {
            HashAlgo::Crc8 => 8,
            HashAlgo::Crc16 => 16,
            HashAlgo::Crc32 => 32,
            HashAlgo::Identity => 32,
        }
    }

    /// Parse the textual form used in ClickINC source (`"crc_16"`, `"crc16"`, ...).
    pub fn parse(s: &str) -> Option<HashAlgo> {
        match s.to_ascii_lowercase().replace('-', "_").as_str() {
            "crc8" | "crc_8" => Some(HashAlgo::Crc8),
            "crc16" | "crc_16" => Some(HashAlgo::Crc16),
            "crc32" | "crc_32" => Some(HashAlgo::Crc32),
            "identity" | "ident" => Some(HashAlgo::Identity),
            _ => None,
        }
    }
}

/// Cryptographic primitive families (paper Table 8: `_aes` on FPGA, `_ecs` on NFP).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoAlgo {
    /// AES block cipher (FPGA-only).
    Aes,
    /// The "ECS" stream cipher family of the Netronome accelerator (NFP-only).
    Ecs,
}

/// The shape/configuration of a stateful object.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectKind {
    /// A register array: `rows` independent arrays of `size` cells of `width` bits
    /// (paper example: `Array(row=3, size=65536, w=32)`).
    Array {
        /// Number of parallel rows.
        rows: u32,
        /// Number of cells per row.
        size: u32,
        /// Width of each cell in bits.
        width: u16,
    },
    /// A match-action table.
    Table {
        /// Match discipline.
        match_kind: MatchKind,
        /// Key width in bits.
        key_width: u16,
        /// Value width in bits (total across value fields).
        value_width: u16,
        /// Number of entries.
        depth: u32,
        /// Whether the data plane itself writes the table (stateful,
        /// `_semt`/`_stmt` in Table 8) or only the control plane does.
        stateful: bool,
    },
    /// A frequency / membership sketch built from hashed register rows.
    Sketch {
        /// Sketch flavour.
        kind: SketchKind,
        /// Number of hash rows.
        rows: u32,
        /// Number of counters/bits per row.
        cols: u32,
        /// Counter width in bits (1 for Bloom filters).
        width: u16,
    },
    /// A sequence/rolling buffer (used e.g. by DQAcc's rolling cache recorder).
    Seq {
        /// Number of slots.
        size: u32,
        /// Width of each slot in bits.
        width: u16,
    },
    /// A hash function instance.
    Hash {
        /// Algorithm.
        algo: HashAlgo,
        /// Optional modulus applied to the output (`ceil` parameter in templates).
        modulus: Option<u32>,
    },
    /// A cryptographic unit.
    Crypto {
        /// Algorithm.
        algo: CryptoAlgo,
    },
}

impl ObjectKind {
    /// Whether operating on this object constitutes *stateful* data-plane state
    /// (inter-packet state in the paper's terminology, §5.2 step 1).  Hash and
    /// Crypto objects are pure functions and carry no state.
    pub fn is_stateful(&self) -> bool {
        match self {
            ObjectKind::Array { .. } | ObjectKind::Sketch { .. } | ObjectKind::Seq { .. } => true,
            ObjectKind::Table { stateful, .. } => *stateful,
            ObjectKind::Hash { .. } | ObjectKind::Crypto { .. } => false,
        }
    }

    /// Total storage in bits required by the object (0 for pure functions).
    pub fn storage_bits(&self) -> u64 {
        match self {
            ObjectKind::Array { rows, size, width } => {
                u64::from(*rows) * u64::from(*size) * u64::from(*width)
            }
            ObjectKind::Table { key_width, value_width, depth, .. } => {
                u64::from(*depth) * (u64::from(*key_width) + u64::from(*value_width))
            }
            ObjectKind::Sketch { rows, cols, width, .. } => {
                u64::from(*rows) * u64::from(*cols) * u64::from(*width)
            }
            ObjectKind::Seq { size, width } => u64::from(*size) * u64::from(*width),
            ObjectKind::Hash { .. } | ObjectKind::Crypto { .. } => 0,
        }
    }

    /// The value type read out of the object.
    pub fn element_type(&self) -> ValueType {
        match self {
            ObjectKind::Array { width, .. }
            | ObjectKind::Seq { width, .. }
            | ObjectKind::Sketch { width, .. } => ValueType::Bit(*width),
            ObjectKind::Table { value_width, .. } => ValueType::Bit(*value_width),
            ObjectKind::Hash { algo, .. } => ValueType::Bit(algo.output_bits()),
            ObjectKind::Crypto { .. } => ValueType::Bit(128),
        }
    }

    /// Short human-readable kind name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ObjectKind::Array { .. } => "Array",
            ObjectKind::Table { .. } => "Table",
            ObjectKind::Sketch { .. } => "Sketch",
            ObjectKind::Seq { .. } => "Seq",
            ObjectKind::Hash { .. } => "Hash",
            ObjectKind::Crypto { .. } => "Crypto",
        }
    }
}

/// A named, program-scoped object declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectDecl {
    /// Program-unique object name (after synthesis, prefixed with the owning
    /// user's id for isolation, e.g. `kvs_0_mtb`).
    pub name: String,
    /// Shape / configuration.
    pub kind: ObjectKind,
    /// Owning user program (None for the operator's base program).  Used by the
    /// annotation-based incremental compilation (paper §6).
    pub owner: Option<String>,
}

impl ObjectDecl {
    /// Create a declaration owned by no user (base program).
    pub fn new(name: impl Into<String>, kind: ObjectKind) -> Self {
        ObjectDecl { name: name.into(), kind, owner: None }
    }

    /// Create a declaration owned by a user program.
    pub fn owned(name: impl Into<String>, kind: ObjectKind, owner: impl Into<String>) -> Self {
        ObjectDecl { name: name.into(), kind, owner: Some(owner.into()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statefulness_classification() {
        assert!(ObjectKind::Array { rows: 1, size: 8, width: 32 }.is_stateful());
        assert!(ObjectKind::Sketch { kind: SketchKind::CountMin, rows: 3, cols: 16, width: 32 }
            .is_stateful());
        assert!(ObjectKind::Seq { size: 4, width: 32 }.is_stateful());
        assert!(!ObjectKind::Hash { algo: HashAlgo::Crc16, modulus: None }.is_stateful());
        assert!(!ObjectKind::Crypto { algo: CryptoAlgo::Aes }.is_stateful());
        assert!(ObjectKind::Table {
            match_kind: MatchKind::Exact,
            key_width: 32,
            value_width: 32,
            depth: 16,
            stateful: true
        }
        .is_stateful());
        assert!(!ObjectKind::Table {
            match_kind: MatchKind::Exact,
            key_width: 32,
            value_width: 32,
            depth: 16,
            stateful: false
        }
        .is_stateful());
    }

    #[test]
    fn storage_accounting() {
        let arr = ObjectKind::Array { rows: 3, size: 65536, width: 32 };
        assert_eq!(arr.storage_bits(), 3 * 65536 * 32);
        let tbl = ObjectKind::Table {
            match_kind: MatchKind::Exact,
            key_width: 128,
            value_width: 512,
            depth: 5000,
            stateful: false,
        };
        assert_eq!(tbl.storage_bits(), 5000 * (128 + 512));
        assert_eq!(ObjectKind::Hash { algo: HashAlgo::Crc16, modulus: None }.storage_bits(), 0);
    }

    #[test]
    fn hash_algo_parsing_and_width() {
        assert_eq!(HashAlgo::parse("crc_16"), Some(HashAlgo::Crc16));
        assert_eq!(HashAlgo::parse("CRC32"), Some(HashAlgo::Crc32));
        assert_eq!(HashAlgo::parse("identity"), Some(HashAlgo::Identity));
        assert_eq!(HashAlgo::parse("sha256"), None);
        assert_eq!(HashAlgo::Crc16.output_bits(), 16);
        assert_eq!(HashAlgo::Crc8.output_bits(), 8);
    }

    #[test]
    fn element_types() {
        let sketch = ObjectKind::Sketch { kind: SketchKind::Bloom, rows: 3, cols: 1024, width: 1 };
        assert_eq!(sketch.element_type(), ValueType::Bit(1));
        let hash = ObjectKind::Hash { algo: HashAlgo::Crc32, modulus: Some(100) };
        assert_eq!(hash.element_type(), ValueType::Bit(32));
    }

    #[test]
    fn owned_declarations_record_owner() {
        let d = ObjectDecl::owned("mtb", ObjectKind::Seq { size: 4, width: 8 }, "kvs_0");
        assert_eq!(d.owner.as_deref(), Some("kvs_0"));
        let d = ObjectDecl::new("fwd", ObjectKind::Seq { size: 4, width: 8 });
        assert!(d.owner.is_none());
    }

    #[test]
    fn display_forms() {
        assert_eq!(MatchKind::Ternary.to_string(), "ternary");
        assert_eq!(SketchKind::CountMin.to_string(), "count-min");
        assert_eq!(ObjectKind::Seq { size: 1, width: 1 }.kind_name(), "Seq");
    }
}
