//! State-profile analysis: choose a tenant's [`ShardingMode`] from its
//! deployed IR.
//!
//! The runtime can spread a single tenant's flows across every engine shard
//! ([`ShardingMode::ByFlow`]) — but only when that cannot tear the tenant's
//! inter-packet state apart.  This module derives the answer from the
//! program itself, conservatively:
//!
//! 1. Walk the deployment's snippets tracking, for every variable, which
//!    packet header fields its value is derived from (constants, header
//!    reads, ALU/compare/hash combinations, and reads of stateful objects at
//!    already-derivable indices all stay derivable; anything else taints —
//!    including reads of header fields the program itself rewrites, whose
//!    runtime value no longer matches the inject-time flow hash).
//! 2. Every access to a *stateful* object (data-plane inter-packet state,
//!    [`clickinc_ir::ObjectKind::is_stateful`]) must index with derivable
//!    operands; the intersection of those accesses' field sets is the
//!    candidate flow key.  All packets that can ever share a state cell
//!    agree on the key fields, so hashing flows by the key co-locates them
//!    on one shard.
//! 3. Mutations must be **commutatively mergeable**, because the engine
//!    recombines the per-shard state partitions when it finishes and two
//!    *different* flow keys may still collide on one cell (a hash-modulo
//!    slot, a sketch bucket).  Counter increments (`count`) sum exactly and
//!    Bloom sets OR exactly; register/table *overwrites* (`write` on an
//!    Array/Seq/Table, any `del`) have no order-free merge, so they fall
//!    back to [`ShardingMode::ByTenant`].
//! 4. Anything else that breaks the argument — `randint` (per-tenant draw
//!    streams), data-plane `clear` of a stateful object (a whole-object
//!    effect), tainted or constant indices, or stateful accesses with no
//!    common key field — also falls back to `ByTenant`, which is always
//!    safe.
//!
//! A deployment with *no* stateful access at all is stateless and flow-shards
//! by its full flow identity (source, destination, every header field).
//!
//! On the provider templates: the KVS cache program (read-only exact-match
//! cache, hit counters, heavy-hitter CMS, Bloom marker — every access keyed
//! by `hdr.key`, every mutation commutative) flow-shards on `key`; MLAgg
//! pins to `ByTenant` because its aggregation registers are *overwritten*
//! through a lossy hash-modulo slot — two rounds on different shards can
//! collide on one slot, and no merge of the torn registers reproduces the
//! shared store.

use clickinc_ir::{Instruction, ObjectKind, OpCode, Operand, SketchKind};
use clickinc_runtime::{ShardingMode, TenantHop};
use std::collections::{BTreeMap, BTreeSet};

/// What a variable's value can depend on.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Dep {
    /// Derivable from the given packet header fields (possibly none — a
    /// constant) and partition-local state.
    Fields(BTreeSet<String>),
    /// Not derivable from the inject-time packet alone (e.g. imported from
    /// an upstream device's Param export, or read from a header field the
    /// program rewrote).
    Tainted,
}

impl Dep {
    fn union(self, other: Dep) -> Dep {
        match (self, other) {
            (Dep::Fields(mut a), Dep::Fields(b)) => {
                a.extend(b);
                Dep::Fields(a)
            }
            _ => Dep::Tainted,
        }
    }
}

/// Per-deployment analysis state.
struct Profile {
    /// Variable → dependency set.  Variables never defined in the analyzed
    /// snippets (Param imports from devices outside the hop list) read as
    /// tainted.
    vars: BTreeMap<String, Dep>,
    /// Header fields rewritten by the program.  A rewritten field's runtime
    /// value no longer matches what the inject-time flow hash saw, so
    /// subsequent reads are tainted — a rewrite must never launder a
    /// constant or foreign value into a flow key.
    rewritten_headers: BTreeSet<String>,
    /// Declared object shapes (isolation-renamed).
    kinds: BTreeMap<String, ObjectKind>,
    /// Per stateful access, the header fields its index derives from.
    access_keys: Vec<BTreeSet<String>>,
    /// Whether anything forced the safe fallback.
    by_tenant: bool,
}

impl Profile {
    fn operand_dep(&self, operand: &Operand) -> Dep {
        match operand {
            Operand::Const(_) => Dep::Fields(BTreeSet::new()),
            Operand::Header(field) => {
                if self.rewritten_headers.contains(field) {
                    Dep::Tainted
                } else {
                    Dep::Fields(BTreeSet::from([field.clone()]))
                }
            }
            // `meta.inc_user` is constant per tenant; `meta.step` advances
            // identically for every packet at a given execution point.
            Operand::Meta(field) if field == "inc_user" || field == "step" => {
                Dep::Fields(BTreeSet::new())
            }
            Operand::Meta(_) => Dep::Tainted,
            Operand::Var(name) => self.vars.get(name).cloned().unwrap_or(Dep::Tainted),
        }
    }

    fn operands_dep(&self, operands: &[Operand]) -> Dep {
        operands
            .iter()
            .fold(Dep::Fields(BTreeSet::new()), |acc, op| acc.union(self.operand_dep(op)))
    }

    /// Whether the named object holds inter-packet state.
    fn is_stateful(&self, object: &str) -> bool {
        self.kinds.get(object).is_some_and(|k| k.is_stateful())
    }

    /// Record a read/count access to `object` indexed by `index`.
    /// Non-stateful objects (pure hashes, control-plane tables) constrain
    /// nothing; stateful ones must have a derivable, non-constant index.
    fn record_access(&mut self, object: &str, index: &[Operand]) -> Dep {
        let dep = self.operands_dep(index);
        if self.is_stateful(object) {
            match &dep {
                Dep::Fields(fields) if !fields.is_empty() => {
                    self.access_keys.push(fields.clone());
                }
                // constant or tainted index: every packet may touch the same
                // cell — only safe with all traffic on one shard
                _ => self.by_tenant = true,
            }
        }
        dep
    }

    fn assign(&mut self, dest: &str, dep: Dep) {
        self.vars.insert(dest.to_string(), dep);
    }
}

/// Derive the sharding mode for a deployment's hop list; see the
/// [module docs](self) for the analysis.
pub fn sharding_mode_for(hops: &[TenantHop]) -> ShardingMode {
    let mut profile = Profile {
        vars: BTreeMap::new(),
        rewritten_headers: BTreeSet::new(),
        kinds: BTreeMap::new(),
        access_keys: Vec::new(),
        by_tenant: false,
    };
    for hop in hops {
        for snippet in &hop.snippets {
            for object in &snippet.objects {
                profile.kinds.entry(object.name.clone()).or_insert_with(|| object.kind.clone());
            }
        }
    }
    for hop in hops {
        for snippet in &hop.snippets {
            for instruction in &snippet.instructions {
                analyze(&mut profile, instruction);
                if profile.by_tenant {
                    return ShardingMode::ByTenant;
                }
            }
        }
    }
    if profile.access_keys.is_empty() {
        // no inter-packet state at all: hash the full flow identity
        return ShardingMode::ByFlow { key_fields: Vec::new() };
    }
    // the flow key must be implied by every stateful access's index: take
    // the intersection, so packets sharing any state cell share the key
    let mut keys = profile.access_keys.clone();
    let mut common = keys.pop().expect("non-empty");
    for set in keys {
        common = common.intersection(&set).cloned().collect();
    }
    if common.is_empty() {
        ShardingMode::ByTenant
    } else {
        ShardingMode::ByFlow { key_fields: common.into_iter().collect() }
    }
}

fn analyze(profile: &mut Profile, instruction: &Instruction) {
    match &instruction.op {
        OpCode::Assign { dest, src } => {
            let dep = profile.operand_dep(src);
            profile.assign(dest, dep);
        }
        OpCode::Alu { dest, lhs, rhs, .. } | OpCode::Cmp { dest, lhs, rhs, .. } => {
            let dep = profile.operand_dep(lhs).union(profile.operand_dep(rhs));
            profile.assign(dest, dep);
        }
        OpCode::Hash { dest, keys, .. } => {
            let dep = profile.operands_dep(keys);
            profile.assign(dest, dep);
        }
        OpCode::Checksum { dest, inputs } => {
            let dep = profile.operands_dep(inputs);
            profile.assign(dest, dep);
        }
        OpCode::Crypto { dest, input, .. } => {
            let dep = profile.operand_dep(input);
            profile.assign(dest, dep);
        }
        OpCode::ReadState { dest, object, index } => {
            let dep = profile.record_access(object, index);
            profile.assign(dest, dep);
        }
        OpCode::CountState { dest, object, index, .. } => {
            // a counter increment: commutative, sums exactly across flow
            // partitions even when two flows collide on one cell
            let dep = profile.record_access(object, index);
            if let Some(dest) = dest {
                profile.assign(dest, dep);
            }
        }
        OpCode::WriteState { object, index, .. } => {
            // overwrites are only mergeable when they are idempotent: a
            // Bloom set ORs exactly.  Register/table overwrites have no
            // order-free merge — two flows colliding on a hash-modulo slot
            // from different shards would tear the cell — so they pin the
            // tenant to one shard.
            match profile.kinds.get(object) {
                Some(ObjectKind::Sketch { kind: SketchKind::Bloom, .. }) => {
                    profile.record_access(object, index);
                }
                Some(kind) if kind.is_stateful() => profile.by_tenant = true,
                // control-plane-only tables are written by the data plane in
                // no template, and replicated writes could shadow them:
                // treat any data-plane write as disqualifying
                Some(ObjectKind::Table { .. }) => profile.by_tenant = true,
                _ => {}
            }
        }
        OpCode::DeleteState { object, .. } => {
            // deleting from a replicated/partitioned object resurrects or
            // tears entries on merge
            if profile.kinds.contains_key(object) {
                profile.by_tenant = true;
            }
        }
        OpCode::ClearState { object } => {
            // a data-plane clear is a whole-object effect: replicas would
            // clear only their own partition
            if profile.is_stateful(object) {
                profile.by_tenant = true;
            }
        }
        OpCode::RandInt { .. } => {
            // per-tenant draw streams are order-dependent across the whole
            // tenant, not per flow
            profile.by_tenant = true;
        }
        OpCode::SetHeader { field, .. } => {
            profile.rewritten_headers.insert(field.clone());
        }
        OpCode::Back { updates } => {
            // `back()` rewrites the live packet's header before bouncing it,
            // and subsequent (guarded) instructions still execute — the same
            // laundering hazard as SetHeader
            for (field, _) in updates {
                profile.rewritten_headers.insert(field.clone());
            }
        }
        OpCode::Drop
        | OpCode::Forward
        | OpCode::Mirror { .. }
        | OpCode::Multicast { .. }
        | OpCode::CopyTo { .. }
        | OpCode::NoOp => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_device::DeviceModel;
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
    use clickinc_synthesis::isolate_user_program;

    fn hops_for(source: &str, user: &str) -> Vec<TenantHop> {
        let ir = compile_source(user, source).expect("compiles");
        vec![TenantHop {
            device: "tor0".to_string(),
            model: DeviceModel::tofino(),
            snippets: vec![isolate_user_program(&ir, user, 1)],
        }]
    }

    #[test]
    fn kvs_flow_shards_on_the_request_key() {
        let t = kvs_template("kvs0", KvsParams::default());
        let mode = sharding_mode_for(&hops_for(&t.source, "kvs0"));
        assert_eq!(mode, ShardingMode::ByFlow { key_fields: vec!["key".to_string()] });
    }

    #[test]
    fn mlagg_register_overwrites_pin_it_to_one_shard() {
        // the aggregation registers are overwritten through a lossy
        // hash-modulo slot: two rounds colliding on a slot from different
        // shards would tear the cell, so the profile must refuse ByFlow
        let t = mlagg_template(
            "agg0",
            MlAggParams { dims: 4, num_workers: 2, num_aggregators: 64, is_float: false },
        );
        let mode = sharding_mode_for(&hops_for(&t.source, "agg0"));
        assert_eq!(mode, ShardingMode::ByTenant);
    }

    #[test]
    fn stateless_programs_flow_shard_on_the_full_flow_identity() {
        let mode = sharding_mode_for(&hops_for("forward()\n", "fwd0"));
        assert_eq!(mode, ShardingMode::ByFlow { key_fields: Vec::new() });
    }

    #[test]
    fn snippetless_hops_are_stateless() {
        let hops = vec![TenantHop {
            device: "tor0".into(),
            model: DeviceModel::tofino(),
            snippets: vec![],
        }];
        assert_eq!(sharding_mode_for(&hops), ShardingMode::ByFlow { key_fields: Vec::new() });
    }

    #[test]
    fn global_counters_pin_a_tenant_to_one_shard() {
        // a constant-indexed counter is shared by every packet of the tenant
        let source = "ctr = Array(row=1, size=4, w=32)\ncount(ctr, 0, 1)\nforward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "ctr0")), ShardingMode::ByTenant);
    }

    #[test]
    fn header_rewrites_cannot_launder_a_constant_into_a_flow_key() {
        // rewriting hdr.key to a constant makes every packet hit ctr[0]; the
        // rewrite must not let the access masquerade as keyed by hdr.key
        let source = "ctr = Array(row=1, size=64, w=32)\n\
                      hdr.key = 0\n\
                      count(ctr, hdr.key, 1)\n\
                      forward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "rw0")), ShardingMode::ByTenant);
    }

    #[test]
    fn back_rewrites_cannot_launder_a_constant_into_a_flow_key() {
        // back() rewrites the live packet before bouncing it; a later
        // (guarded) stateful access keyed by the rewritten field must not
        // classify as flow-keyed
        let source = "ctr = Array(row=1, size=64, w=32)\n\
                      if hdr.op == 1:\n\
                      \x20   back(hdr={key: 0})\n\
                      else:\n\
                      \x20   count(ctr, hdr.key, 1)\n\
                      forward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "bk0")), ShardingMode::ByTenant);
    }

    #[test]
    fn register_overwrites_pin_a_tenant_to_one_shard() {
        // a keyed *overwrite* is not commutatively mergeable across shards
        let source = "reg = Array(row=1, size=64, w=32)\n\
                      write(reg, 0, hdr.key, hdr.seq)\n\
                      forward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "wr0")), ShardingMode::ByTenant);
    }

    #[test]
    fn disjoint_state_keys_pin_a_tenant_to_one_shard() {
        // two stateful objects keyed by different fields: no single flow key
        // co-locates both objects' sharers
        let source = "a = Array(row=1, size=64, w=32)\n\
                      b = Array(row=1, size=64, w=32)\n\
                      count(a, hdr.key, 1)\n\
                      count(b, hdr.seq, 1)\n\
                      forward()\n";
        assert_eq!(sharding_mode_for(&hops_for(source, "dj0")), ShardingMode::ByTenant);
    }
}
