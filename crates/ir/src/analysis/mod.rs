//! Static analysis over the IR: dataflow, taint, and the verifier pipeline.
//!
//! Three layers, each reusable on its own:
//!
//! * [`dataflow`] — def-use chains, reaching definitions and value-graph
//!   liveness over the straight-line (if-converted) instruction stream.
//! * [`taint`] — the forward taint lattice tracking which header fields every
//!   value derives from, plus [`taint::state_profile`]: the single analysis
//!   behind both the runtime's flow-sharding decision
//!   (`clickinc::sharding_mode_for`) and the verifier's mutation
//!   classification.
//! * [`passes`] — the [`passes::PassManager`] pipeline of verifier passes
//!   emitting structured [`diagnostics::Diagnostic`] values; the service runs
//!   it before the first mutation of every deploy.
//! * [`opt`] — the transform tier mounted on the same diagnostics machinery:
//!   constant folding, dead-value elimination and guard hoisting, each run
//!   re-verified against the verifier pipeline before its output is accepted.

pub mod dataflow;
pub mod diagnostics;
pub mod opt;
pub mod passes;
pub mod taint;

pub use dataflow::{header_reads, header_writes, is_effectful, DefUse};
pub use diagnostics::{Diagnostic, DiagnosticSet, Severity};
pub use opt::{
    ConstFoldPass, DeadValueElimPass, GuardHoistPass, Optimizer, TransformContext, TransformPass,
};
pub use passes::{
    BoundsPass, CommutativityPass, DeadSnippetPass, DeviceTarget, IsolationPass, PassContext,
    PassManager, PlacedSnippet, ResourceBoundPass, UninitHeaderPass, VerifierPass,
};
pub use taint::{
    state_profile, MutationKind, MutationRecord, PinReason, ShardingDecision, StateProfile, Taint,
};
