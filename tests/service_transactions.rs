//! Transactional guarantees of the `ClickIncService` facade:
//!
//! 1. **Round-trip equivalence** — `plan` → `commit` produces a deployment
//!    bit-identical to the direct `Controller::deploy` path (numeric id,
//!    snippets, plane fingerprints, telemetry after a fixed seeded
//!    workload).
//! 2. **Plan purity** — planning never changes the remaining resource
//!    ratio, the active user set, or any plane's store fingerprint.
//! 3. **All-or-nothing batches** — a failed `deploy_all` (unknown host,
//!    compile error, stale plan, admission refusal) leaves the ledger
//!    ratio, the active users, the engine tenants and every plane's store
//!    fingerprint bit-identical to before the call, even when earlier
//!    requests of the batch had already committed.
//! 4. **Planner equivalence** — parallel planning + sequential commit of a
//!    mixed batch is bit-identical (plane fingerprints, ledger ratio,
//!    tenant hops, numeric ids) to the sequential plan→commit path, in any
//!    worker-thread count; the plan cache only answers while the epoch
//!    stands still; admission policies reject with the typed
//!    `ClickIncError::Rejected` and change nothing.

use clickinc::lang::templates::{
    count_min_sketch, dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams,
    MlAggParams,
};
use clickinc::topology::Topology;
use clickinc::{
    ClickIncError, ClickIncService, Controller, ResourceFloor, ServiceRequest, TenantHop,
};
use clickinc_emulator::kvs_backend_value;
use clickinc_ir::Value;
use clickinc_runtime::workload::{KvsWorkload, KvsWorkloadConfig};
use clickinc_runtime::{EngineConfig, TrafficEngine};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn engine_config() -> EngineConfig {
    EngineConfig { shards: 2, batch_size: 32, ..Default::default() }
}

fn kvs_request(user: &str) -> ServiceRequest {
    ServiceRequest::builder(user)
        .template(kvs_template(user, KvsParams { cache_depth: 2000, ..Default::default() }))
        .from_("pod0a")
        .from_("pod1a")
        .to("pod2b")
        .build()
        .expect("well-formed request")
}

fn seeded_workload(user: &str, id: i64) -> KvsWorkload {
    KvsWorkload::new(KvsWorkloadConfig {
        tenant: user.to_string(),
        user_id: id,
        keys: 500,
        skew: 1.2,
        requests: 800,
        rate_pps: 1_000_000.0,
        seed: 9,
    })
}

/// Everything observable a serving run leaves behind, for equivalence
/// comparison across the two deployment paths.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    numeric_id: i64,
    snippets: Vec<clickinc::ir::IrProgram>,
    controller_planes: BTreeMap<String, u64>,
    engine_stores: BTreeMap<String, u64>,
    telemetry: clickinc_runtime::TelemetryReport,
    diagnostics_json: String,
}

/// The old two-API wiring: a controller bridged onto an engine by hand.
fn run_direct_controller_path() -> RunFingerprint {
    let engine = TrafficEngine::new(engine_config());
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    controller.attach_engine(engine.handle());
    let planned = controller.plan(&kvs_request("kvs0")).expect("plans");
    let diagnostics_json = planned.diagnostics().to_json();
    let deployment = controller.commit(planned).expect("deploys");
    let numeric_id = deployment.numeric_id;
    let snippets: Vec<_> = deployment.snippets.values().flatten().cloned().collect();

    let handle = engine.handle();
    for hop in controller.tenant_hops("kvs0") {
        if hop.snippets.iter().any(|s| s.objects.iter().any(|o| o.name == "kvs0_cache")) {
            for key in 0..64 {
                handle.populate_table(
                    "kvs0",
                    &hop.device,
                    "kvs0_cache",
                    vec![Value::Int(key)],
                    vec![Value::Int(kvs_backend_value(key))],
                );
            }
        }
    }
    let mut wl = seeded_workload("kvs0", numeric_id);
    handle.run_workload(&mut wl, usize::MAX, 64);
    handle.flush();
    let outcome = engine.finish();
    RunFingerprint {
        numeric_id,
        snippets,
        controller_planes: controller.plane_fingerprints(),
        engine_stores: outcome.stores.iter().map(|(d, s)| (d.clone(), s.fingerprint())).collect(),
        telemetry: outcome.telemetry,
        diagnostics_json,
    }
}

/// The facade path: plan → commit → handle.
fn run_service_path() -> RunFingerprint {
    let service =
        ClickIncService::with_config(Topology::emulation_topology_all_tofino(), engine_config())
            .expect("engine config is valid");
    let plan = service.plan(&kvs_request("kvs0")).expect("plans");
    let diagnostics_json = plan.diagnostics().to_json();
    let tenant = service.commit(plan).expect("commits");
    let numeric_id = tenant.numeric_id();
    let (snippets, controller_planes) = {
        let controller = service.controller();
        let deployment = controller.deployment("kvs0").expect("active");
        let snippets: Vec<_> = deployment.snippets.values().flatten().cloned().collect();
        (snippets, controller.plane_fingerprints())
    };
    for key in 0..64 {
        tenant.populate_table(
            "kvs0_cache",
            vec![Value::Int(key)],
            vec![Value::Int(kvs_backend_value(key))],
        );
    }
    let mut wl = seeded_workload("kvs0", numeric_id);
    tenant.run_workload(&mut wl, usize::MAX, 64);
    service.flush();
    let outcome = service.finish();
    RunFingerprint {
        numeric_id,
        snippets,
        controller_planes,
        engine_stores: outcome.stores.iter().map(|(d, s)| (d.clone(), s.fingerprint())).collect(),
        telemetry: outcome.telemetry,
        diagnostics_json,
    }
}

#[test]
fn plan_commit_round_trip_equals_the_direct_deploy_path() {
    let direct = run_direct_controller_path();
    let service = run_service_path();
    assert_eq!(direct.numeric_id, service.numeric_id, "same numeric id");
    assert_eq!(direct.snippets, service.snippets, "same installed snippets");
    assert_eq!(direct.controller_planes, service.controller_planes, "same plane fingerprints");
    assert_eq!(direct.engine_stores, service.engine_stores, "same engine store fingerprints");
    assert_eq!(direct.telemetry, service.telemetry, "same telemetry for the seeded workload");
    // the verifier ran on both paths, found the same things, and its JSON
    // export round-trips losslessly like the telemetry export does
    assert_eq!(direct.diagnostics_json, service.diagnostics_json, "same verifier diagnostics");
    let parsed = clickinc_ir::DiagnosticSet::from_json(&direct.diagnostics_json)
        .expect("diagnostics JSON parses back");
    assert_eq!(parsed.to_json(), direct.diagnostics_json, "diagnostics JSON round-trips");
    // the workload actually did something on both paths
    let stats = direct.telemetry.tenant("kvs0").expect("served");
    assert_eq!(stats.completed, 800);
    assert!(stats.hit_ratio > 0.3);
}

/// A snapshot of every piece of observable controller/engine state the
/// rollback guarantees protect.  The telemetry export is stamped with a
/// monotone `snapshot_seq` that advances on every observation (including
/// this one), so the stamp line is normalized out before comparing.
fn snapshot(service: &ClickIncService) -> (u64, Vec<String>, BTreeMap<String, u64>, String) {
    let telemetry = service
        .telemetry()
        .to_json()
        .lines()
        .filter(|line| !line.trim_start().starts_with("\"snapshot_seq\""))
        .collect::<Vec<_>>()
        .join("\n");
    (
        service.remaining_resource_ratio().to_bits(),
        service.active_users(),
        service.controller().plane_fingerprints(),
        telemetry,
    )
}

#[test]
fn failed_deploy_all_rolls_back_already_committed_tenants() {
    let service =
        ClickIncService::with_config(Topology::emulation_topology_all_tofino(), engine_config())
            .expect("engine config is valid");
    // a resident tenant outside the batch must be untouched too
    let resident = service.deploy(kvs_request("resident")).expect("resident deploys");
    let before = snapshot(&service);

    // two good requests followed by one that exceeds nothing but names an
    // unknown host: the first two commit, then the batch unwinds
    let err = service
        .deploy_all(vec![
            kvs_request("batch_a"),
            ServiceRequest::builder("batch_b")
                .template(dqacc_template("batch_b", DqAccParams { depth: 2000, ways: 4 }))
                .from_("pod0b")
                .to("pod2b")
                .build()
                .unwrap(),
            ServiceRequest::builder("batch_poison")
                .source("forward()\n")
                .from_("mars")
                .to("pod2b")
                .build()
                .unwrap(),
        ])
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, ClickIncError::UnknownHost(h) if h == "mars"));
    assert_eq!(snapshot(&service), before, "rollback restored every observable");

    // a compile error late in the batch rolls back the same way
    let err = service
        .deploy_all(vec![
            kvs_request("batch_a"),
            ServiceRequest::builder("batch_bad_src")
                .source("x = undefined_thing(1)\n")
                .from_("pod0a")
                .to("pod2b")
                .build()
                .unwrap(),
        ])
        .map(|_| ())
        .unwrap_err();
    assert!(matches!(err, ClickIncError::Compile(_)));
    assert_eq!(snapshot(&service), before, "rollback restored every observable");

    // the resident still serves traffic after both rollbacks
    let mut wl = seeded_workload("resident", resident.numeric_id());
    resident.run_workload(&mut wl, usize::MAX, 64);
    service.flush();
    let stats = resident.telemetry().expect("resident served");
    assert_eq!(stats.completed, 800);
    service.finish();
}

/// A mixed batch of 8 KVS/MLAgg requests with distinct users, sources and
/// template parameters — the acceptance workload for planner equivalence.
fn mixed_batch() -> Vec<ServiceRequest> {
    (0..8)
        .map(|i| {
            let user = format!("mix{i}");
            if i % 2 == 0 {
                ServiceRequest::builder(&user)
                    .template(kvs_template(
                        &user,
                        KvsParams { cache_depth: 1000 + 200 * i as u32, ..Default::default() },
                    ))
                    .from_(if i % 4 == 0 { "pod0a" } else { "pod1a" })
                    .to("pod2b")
                    .build()
                    .unwrap()
            } else {
                ServiceRequest::builder(&user)
                    .template(mlagg_template(
                        &user,
                        MlAggParams {
                            dims: 8 + i as u32,
                            num_aggregators: 512,
                            ..Default::default()
                        },
                    ))
                    .from_(if i % 4 == 1 { "pod0b" } else { "pod1b" })
                    .to("pod2a")
                    .build()
                    .unwrap()
            }
        })
        .collect()
}

/// Everything the acceptance criterion compares: plane fingerprints, ledger
/// ratio (as bits), and per-tenant numeric ids + hops.
type DeploymentObservables = (BTreeMap<String, u64>, u64, BTreeMap<String, (i64, Vec<TenantHop>)>);

fn deployment_observables(service: &ClickIncService) -> DeploymentObservables {
    let controller = service.controller();
    let tenants = controller
        .active_users()
        .iter()
        .map(|user| {
            let numeric_id = controller.numeric_id_of(user).expect("active");
            (user.to_string(), (numeric_id, controller.tenant_hops(user)))
        })
        .collect();
    (controller.plane_fingerprints(), controller.remaining_resource_ratio().to_bits(), tenants)
}

#[test]
fn parallel_planning_plus_sequential_commit_is_bit_identical_to_the_sequential_path() {
    let requests = mixed_batch();
    assert!(requests.len() >= 8);

    // the sequential reference: plan → commit one request at a time
    let sequential =
        ClickIncService::with_config(Topology::emulation_topology_all_tofino(), engine_config())
            .expect("engine config is valid");
    for request in &requests {
        let plan = sequential.plan(request).expect("plans");
        sequential.commit(plan).expect("commits");
    }
    let reference = deployment_observables(&sequential);
    sequential.finish();

    // the planner path, at several worker-thread counts
    for threads in [1usize, 2, 8] {
        let service = ClickIncService::with_config(
            Topology::emulation_topology_all_tofino(),
            engine_config(),
        )
        .expect("engine config is valid");
        let handles = service
            .planner()
            .with_threads(threads)
            .deploy_all(requests.clone())
            .expect("the batch deploys");
        assert_eq!(handles.len(), requests.len());
        // handles come back in request order with the sequential numeric ids
        for (i, handle) in handles.iter().enumerate() {
            assert_eq!(handle.user(), format!("mix{i}"));
            assert_eq!(handle.numeric_id(), i as i64 + 1);
        }
        assert_eq!(
            deployment_observables(&service),
            reference,
            "{threads}-thread planner path diverged from the sequential path"
        );
        // cache accounting: the pre-solve misses once per member, and every
        // member after the first misses again at commit time (its
        // predecessor's commit moved the epoch, forcing the re-solve that
        // bit-identity requires); the first member commits its still-fresh
        // pre-solved plan without a lookup
        let stats = service.planner_stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses as usize, 2 * requests.len() - 1);
        service.finish();
    }
}

#[test]
fn resource_floor_rejects_the_marginal_tenant_and_admitted_tenants_keep_serving() {
    let service =
        ClickIncService::with_config(Topology::emulation_topology_all_tofino(), engine_config())
            .expect("engine config is valid");
    let planner = service.planner().with_policy(ResourceFloor { min_remaining_ratio: 0.99 });

    // admit tenants one by one until the floor refuses the marginal one
    let mut admitted = Vec::new();
    let mut rejection = None;
    for i in 0..16 {
        let before = snapshot(&service);
        match planner.deploy(kvs_request(&format!("floor{i}"))) {
            Ok(handle) => admitted.push(handle),
            Err(err) => {
                assert!(
                    matches!(
                        &err,
                        ClickIncError::Rejected { user, policy, .. }
                            if user == &format!("floor{i}") && policy == "resource_floor"
                    ),
                    "got {err}"
                );
                assert_eq!(snapshot(&service), before, "a rejection changes nothing");
                rejection = Some(err);
                break;
            }
        }
    }
    let rejection = rejection.expect("the floor eventually rejects a marginal tenant");
    assert!(rejection.to_string().contains("floor"));
    assert!(!admitted.is_empty(), "tenants above the floor were admitted");
    assert!(service.remaining_resource_ratio() >= 0.99, "the floor held");

    // the admitted tenants still serve traffic on the engine
    let first = &admitted[0];
    let mut wl = seeded_workload(first.user(), first.numeric_id());
    first.run_workload(&mut wl, usize::MAX, 64);
    service.flush();
    let stats = first.telemetry().expect("admitted tenant is live");
    assert_eq!(stats.completed, 800, "traffic still flows for admitted tenants");
    service.finish();
}

#[test]
fn stale_plans_miss_the_cache_and_re_solve_while_fresh_plans_hit() {
    let service =
        ClickIncService::with_config(Topology::emulation_topology_all_tofino(), engine_config())
            .expect("engine config is valid");
    let planner = service.planner();

    // plan `victim` (miss: nothing cached yet), then let an unrelated
    // tenant move the epoch
    let stale_plan = planner.plan(&kvs_request("victim")).expect("plans");
    let epoch_at_solve = stale_plan.epoch();
    service.deploy(kvs_request("unrelated")).expect("unrelated tenant deploys");
    assert_ne!(service.controller().epoch(), epoch_at_solve, "the epoch moved");

    // staleness outranks policy: even with an impossible floor installed,
    // the stale plan surfaces as StalePlan (re-plan and retry), never as a
    // Rejected verdict reached on dead-ledger numbers
    let floored = service.planner().with_policy(ResourceFloor { min_remaining_ratio: 2.0 });
    let err = floored.commit(stale_plan.clone()).map(|_| ()).unwrap_err();
    assert!(matches!(err, ClickIncError::StalePlan { .. }), "got {err}");

    // the strict commit path refuses the stale plan outright
    let err = planner.commit(stale_plan).map(|_| ()).unwrap_err();
    assert!(matches!(err, ClickIncError::StalePlan { .. }), "got {err}");

    // the retry-friendly path must MISS the cache (epoch moved) and
    // re-solve at the current epoch
    let before = service.planner_stats();
    let tenant = planner.deploy(kvs_request("victim")).expect("re-solve and commit");
    let after = service.planner_stats();
    assert_eq!(after.cache_hits, before.cache_hits, "no cache hit for the stale plan");
    assert_eq!(after.cache_misses, before.cache_misses + 1, "the retry re-ran placement");
    assert_eq!(tenant.user(), "victim");

    // while the epoch stands still, plan → deploy answers from the cache
    let before = service.planner_stats();
    let quoted = planner.plan(&kvs_request("fresh")).expect("plans");
    let tenant = planner.deploy(kvs_request("fresh")).expect("commits the cached plan");
    let after = service.planner_stats();
    assert_eq!(after.cache_hits, before.cache_hits + 1, "the deploy reused the quote's plan");
    assert_eq!(after.cache_misses, before.cache_misses + 1, "only the quote ran placement");
    assert_eq!(tenant.numeric_id(), quoted.numeric_id(), "same plan, same id");
    service.finish();
}

#[test]
fn removing_a_never_committed_user_is_unknown_user_and_changes_nothing() {
    let service =
        ClickIncService::with_config(Topology::emulation_topology_all_tofino(), engine_config())
            .expect("engine config is valid");
    // planning alone never registers the user
    let _plan = service.plan(&kvs_request("ghost")).expect("plans");
    let before = snapshot(&service);
    let err = service.remove("ghost").map(|_| ()).unwrap_err();
    assert!(matches!(err, ClickIncError::UnknownUser(u) if u == "ghost"));
    assert_eq!(snapshot(&service), before);
    service.finish();
}

fn request_from_op(op: u8, index: usize) -> ServiceRequest {
    let user = format!("u{index}");
    match op % 6 {
        0 => ServiceRequest::builder(&user)
            .template(kvs_template(&user, KvsParams { cache_depth: 1000, ..Default::default() }))
            .from_("pod0a")
            .to("pod2b")
            .build()
            .unwrap(),
        1 => ServiceRequest::builder(&user)
            .template(mlagg_template(
                &user,
                MlAggParams { dims: 8, num_aggregators: 512, ..Default::default() },
            ))
            .from_("pod1a")
            .to("pod2a")
            .build()
            .unwrap(),
        2 => ServiceRequest::builder(&user)
            .template(dqacc_template(&user, DqAccParams { depth: 1000, ways: 4 }))
            .from_("pod0b")
            .to("pod2b")
            .build()
            .unwrap(),
        3 => ServiceRequest::builder(&user)
            .template(count_min_sketch(&user, 3, 512))
            .from_("pod1b")
            .to("pod2b")
            .build()
            .unwrap(),
        4 => ServiceRequest::builder(&user)
            .source("forward()\n")
            .from_("no-such-host")
            .to("pod2b")
            .build()
            .unwrap(),
        _ => ServiceRequest::builder(&user)
            .source("x = undefined_thing(1)\n")
            .from_("pod0a")
            .to("pod2b")
            .build()
            .unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any request sequence: `plan` is pure, and a failed `deploy_all`
    /// leaves the ledger ratio, the active users, the engine tenants and
    /// every plane's store fingerprint bit-identical to before the call.
    #[test]
    fn rollback_invariants_hold_for_any_request_sequence(
        ops in proptest::collection::vec(0u8..6, 1..4),
    ) {
        let service = ClickIncService::with_config(
            Topology::emulation_topology_all_tofino(),
            EngineConfig { shards: 1, batch_size: 16, ..Default::default() },
        )
        .expect("engine config is valid");
        let mut requests: Vec<ServiceRequest> =
            ops.iter().enumerate().map(|(i, op)| request_from_op(*op, i)).collect();
        // force at least one poison request so deploy_all must fail
        if !ops.iter().any(|op| op % 6 >= 4) {
            requests.push(request_from_op(4, requests.len()));
        }

        let before = snapshot(&service);

        // planning any of the valid requests is a pure dry-run
        for request in &requests {
            let planned = service.plan(request);
            if let Ok(plan) = &planned {
                prop_assert!(plan.predicted_remaining_ratio() <= service.remaining_resource_ratio());
            }
            prop_assert_eq!(snapshot(&service), before);
        }

        // the poisoned batch fails and rolls back everything (deploy_all is
        // planner-backed now: parallel solve, sequential commit, same
        // rollback)
        prop_assert!(service.deploy_all(requests).map(|_| ()).is_err());
        prop_assert_eq!(snapshot(&service), before);
        service.finish();
    }

    /// An admission floor no plan can satisfy rejects every batch with the
    /// typed error and leaves the ledger ratio, active users, plane
    /// fingerprints and engine telemetry untouched — whatever the request
    /// mix.
    #[test]
    fn impossible_resource_floor_rejects_and_changes_nothing(
        ops in proptest::collection::vec(0u8..4, 1..4), // valid request kinds only
    ) {
        let service = ClickIncService::with_config(
            Topology::emulation_topology_all_tofino(),
            EngineConfig { shards: 1, batch_size: 16, ..Default::default() },
        )
        .expect("engine config is valid");
        let requests: Vec<ServiceRequest> =
            ops.iter().enumerate().map(|(i, op)| request_from_op(*op, i)).collect();
        let before = snapshot(&service);
        let err = service
            .planner()
            .with_policy(ResourceFloor { min_remaining_ratio: 2.0 })
            .deploy_all(requests)
            .map(|_| ())
            .unwrap_err();
        prop_assert!(
            matches!(&err, ClickIncError::Rejected { policy, .. } if policy == "resource_floor"),
            "got {}", err
        );
        prop_assert_eq!(snapshot(&service), before);
        service.finish();
    }
}
