//! Table 3 — placing six program instances over the Fig. 11 emulation topology
//! (all-Tofino variant): placement time, chosen devices, normalized resource
//! consumption and communication overhead.

use clickinc::Controller;
use clickinc_apps::table3_requests;
use clickinc_topology::Topology;
use std::time::Instant;

fn main() {
    println!("== Table 3: multi-user program placement over the Fig. 11 topology ==");
    let mut controller = Controller::new(Topology::emulation_topology_all_tofino());
    println!(
        "{:<8} {:>12} {:<40} {:>10} {:>8}",
        "Program", "Place time", "Devices", "Resource", "Comm."
    );
    let start_all = Instant::now();
    for request in table3_requests() {
        let user = request.user.clone();
        match controller.deploy(request) {
            Ok(deployment) => {
                let devices = deployment.plan.devices_used().join(";");
                println!(
                    "{:<8} {:>9.2?} {:<40} {:>10.3} {:>8.3}",
                    user,
                    deployment.plan.solve_time,
                    truncate(&devices, 40),
                    deployment.plan.resource_cost,
                    deployment.plan.comm_cost
                );
            }
            Err(e) => println!("{user:<8} FAILED: {e}"),
        }
    }
    println!(
        "total placement+synthesis time for all six instances: {:.2?} (paper: < 10 s, vs hours manually)",
        start_all.elapsed()
    );
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}
