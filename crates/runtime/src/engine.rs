//! The traffic engine: shard threads, tenant routing, and the control plane.
//!
//! [`TrafficEngine`] spawns one worker thread per shard and partitions
//! tenants across them by a stable FNV hash of the tenant id.  All
//! interaction goes through a clonable [`EngineHandle`] — inject traffic,
//! add/remove tenants while other tenants' traffic keeps flowing, write
//! control-plane table entries, flush, snapshot telemetry.  [`TrafficEngine::finish`]
//! drains every shard, merges the per-shard object stores back into the
//! network-wide view, and returns the final telemetry report.

use crate::shard::{ShardFinal, ShardMsg, ShardWorker};
use crate::telemetry::{TelemetryRegistry, TelemetryReport, TenantCounters};
use crate::tenant::TenantHop;
use crate::workload::Workload;
use clickinc_emulator::{Fnv, ObjectStore, Packet};
use clickinc_ir::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Runtime-side failures: today these are all configuration errors caught
/// before any worker thread spawns.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A sizing knob is below its documented minimum.
    InvalidConfig {
        /// The offending [`EngineConfig`] field.
        field: &'static str,
        /// The rejected value.
        value: usize,
        /// The smallest accepted value.
        minimum: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { field, value, minimum } => {
                write!(f, "invalid engine config: `{field}` is {value}, minimum is {minimum}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Engine sizing knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of shard worker threads (≥ 1).
    pub shards: usize,
    /// Packets processed per device-queue batch (≥ 1).
    pub batch_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { shards: 4, batch_size: 256 }
    }
}

impl EngineConfig {
    /// Check the sizing knobs: `shards` and `batch_size` must both be at
    /// least 1, otherwise the worker-spawn and queue-drain paths would be
    /// handed degenerate values.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.shards == 0 {
            return Err(EngineError::InvalidConfig { field: "shards", value: 0, minimum: 1 });
        }
        if self.batch_size == 0 {
            return Err(EngineError::InvalidConfig { field: "batch_size", value: 0, minimum: 1 });
        }
        Ok(())
    }
}

/// Stable tenant → shard hash, independent of process and platform (the
/// emulator's [`Fnv`] digest modulo the shard count).
fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h = Fnv::new();
    h.write_str(tenant);
    (h.finish() % shards.max(1) as u64) as usize
}

/// Clonable, `Send` front door to a running engine.  Everything the control
/// plane and the workload drivers need — including the controller bridge —
/// goes through this handle.
#[derive(Clone)]
pub struct EngineHandle {
    senders: Arc<Vec<Sender<ShardMsg>>>,
    registry: Arc<TelemetryRegistry>,
}

impl EngineHandle {
    /// Register a tenant: its traffic route and per-device snippets are
    /// installed on the owning shard's plane replicas.  Traffic injected
    /// after this call (the channel is FIFO) sees the program.
    pub fn add_tenant(&self, user: &str, hops: Vec<TenantHop>) {
        let counters = Arc::new(TenantCounters::new(hops.len()));
        self.registry.register(user, Arc::clone(&counters));
        let shard = shard_of(user, self.senders.len());
        let _ = self.senders[shard].send(ShardMsg::AddTenant {
            user: user.to_string(),
            hops,
            counters,
        });
    }

    /// Remove a tenant.  The owning shard quiesces the tenant's queued
    /// traffic first (FIFO channel), then drops only its snippets and
    /// exclusively-owned tables; co-resident tenants keep flowing untouched.
    pub fn remove_tenant(&self, user: &str) {
        let shard = shard_of(user, self.senders.len());
        let _ = self.senders[shard].send(ShardMsg::RemoveTenant { user: user.to_string() });
    }

    /// Inject a batch of `(virtual arrival ns, packet)` pairs for a tenant,
    /// in stream order.
    pub fn inject(&self, tenant: &Arc<str>, jobs: Vec<(u64, Packet)>) {
        if jobs.is_empty() {
            return;
        }
        let shard = shard_of(tenant, self.senders.len());
        let _ = self.senders[shard].send(ShardMsg::Inject { user: Arc::clone(tenant), jobs });
    }

    /// Control-plane table write on the shard replica that owns `tenant`
    /// (e.g. pre-populating the tenant's renamed KVS cache table).
    pub fn populate_table(
        &self,
        tenant: &str,
        device: &str,
        table: &str,
        key: Vec<Value>,
        value: Vec<Value>,
    ) {
        let shard = shard_of(tenant, self.senders.len());
        let _ = self.senders[shard].send(ShardMsg::TableWrite {
            device: device.to_string(),
            table: table.to_string(),
            key,
            value,
        });
    }

    /// Drain a workload into the engine: packets are pulled from the
    /// generator, grouped per tenant into `inject_batch`-sized batches, and
    /// sent to the owning shards in stream order.  Stops after `max_packets`
    /// (or when the workload is exhausted) and returns how many were sent.
    pub fn run_workload(
        &self,
        workload: &mut dyn Workload,
        max_packets: usize,
        inject_batch: usize,
    ) -> usize {
        let inject_batch = inject_batch.max(1);
        let mut buffers: BTreeMap<Arc<str>, Vec<(u64, Packet)>> = BTreeMap::new();
        let mut sent = 0usize;
        while sent < max_packets {
            let Some(generated) = workload.next_packet() else { break };
            sent += 1;
            let buffer = buffers.entry(Arc::clone(&generated.tenant)).or_default();
            buffer.push((generated.vtime_ns, generated.packet));
            if buffer.len() >= inject_batch {
                let jobs = std::mem::take(buffer);
                self.inject(&generated.tenant, jobs);
            }
        }
        for (tenant, jobs) in buffers {
            self.inject(&tenant, jobs);
        }
        sent
    }

    /// Barrier: returns once every shard has drained its queues.
    pub fn flush(&self) {
        let acks: Vec<_> = self
            .senders
            .iter()
            .map(|s| {
                let (tx, rx) = channel();
                let _ = s.send(ShardMsg::Flush(tx));
                rx
            })
            .collect();
        for rx in acks {
            let _ = rx.recv();
        }
    }

    /// Merge the per-shard counters into a per-tenant telemetry report.
    /// Cheap and safe to call while traffic flows; exact after a flush.
    pub fn telemetry(&self) -> TelemetryReport {
        self.registry.snapshot()
    }
}

/// Everything a finished run leaves behind.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final merged telemetry.
    pub telemetry: TelemetryReport,
    /// Final object stores per device, merged across shards.  Tenant
    /// isolation makes the per-shard stores disjoint, so this union equals
    /// the store an unsharded run would produce.
    pub stores: BTreeMap<String, ObjectStore>,
}

/// The sharded, batched traffic engine.
pub struct TrafficEngine {
    handle: EngineHandle,
    workers: Vec<JoinHandle<()>>,
}

impl TrafficEngine {
    /// Spawn `config.shards` worker threads, rejecting degenerate configs
    /// with a typed [`EngineError`] instead of clamping.
    pub fn try_new(config: EngineConfig) -> Result<TrafficEngine, EngineError> {
        config.validate()?;
        Ok(TrafficEngine::new(config))
    }

    /// Spawn `config.shards` worker threads.  `shards` and `batch_size` are
    /// clamped to their documented minimum of 1; use
    /// [`TrafficEngine::try_new`] to reject such configs instead.
    pub fn new(config: EngineConfig) -> TrafficEngine {
        let shards = config.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel::<ShardMsg>();
            let batch = config.batch_size;
            senders.push(tx);
            workers.push(std::thread::spawn(move || ShardWorker::run(rx, batch)));
        }
        TrafficEngine {
            handle: EngineHandle {
                senders: Arc::new(senders),
                registry: Arc::new(TelemetryRegistry::default()),
            },
            workers,
        }
    }

    /// A clonable handle for drivers, the controller bridge, and observers.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handle.senders.len()
    }

    /// Stop every shard, merge their final stores, and return the outcome.
    pub fn finish(self) -> RunOutcome {
        let finals: Vec<ShardFinal> = self
            .handle
            .senders
            .iter()
            .map(|s| {
                let (tx, rx) = channel();
                let _ = s.send(ShardMsg::Stop(tx));
                rx
            })
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|rx| rx.recv().ok())
            .collect();
        for worker in self.workers {
            let _ = worker.join();
        }
        let mut stores: BTreeMap<String, ObjectStore> = BTreeMap::new();
        for shard_final in finals {
            for (device, plane) in shard_final.planes {
                stores.entry(device).or_default().merge_from(plane.store());
            }
        }
        RunOutcome { telemetry: self.handle.telemetry(), stores }
    }
}
