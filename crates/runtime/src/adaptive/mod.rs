//! The adaptive runtime: a telemetry-driven reconfiguration control loop.
//!
//! Every knob the earlier layers expose — sharding mode, ingress budgets,
//! placement — is fixed at deploy time, while the congestion telemetry
//! (`shed_packets`, `backpressure_waits`, `queue_depth_hwm`) is write-only.
//! This module closes the loop: an [`AdaptiveController`] periodically
//! snapshots the [`TelemetryRegistry`](crate::telemetry::TelemetryRegistry),
//! computes per-tenant deltas between consecutive snapshots (well-ordered by
//! the snapshot sequence number and the virtual clock), and drives typed
//! [`AdaptAction`]s:
//!
//! * **Live reshard** ([`AdaptAction::Reshard`]) — a saturated tenant whose
//!   state profile admits flow-sharding is moved `ByTenant → ByFlow` (and an
//!   idle one reclaimed back) through
//!   [`EngineHandle::reshard_tenant`](crate::EngineHandle::reshard_tenant):
//!   quiesce via the FIFO uninstall path, re-merge stores additively, re-seed
//!   under the new mode.  Results are bit-identical to never resharding.
//! * **Weighted fair ingress budgets** ([`AdaptAction::ResizeBudget`]) — the
//!   single per-shard `queue_capacity` bound is replaced by per-tenant
//!   credit budgets ([`fair_budgets`]) resized from observed demand, so one
//!   saturating tenant cannot monopolize the shared ingress queues.
//! * **Re-placement trigger** ([`AdaptAction::Replan`]) — a tenant that
//!   stays saturated after resharding and budget resizing is handed up to
//!   the service layer, which re-places it through the full plan/commit
//!   path so the verifier and admission chain gate the move.
//!
//! Safety invariants: the controller never emits a `Reshard` to a mode the
//! tenant's registered *eligibility* (derived by the service layer's
//! state-profile analysis) does not admit; every action is applied through
//! the engine's quiescing reconfigure path; and per-tenant outcomes and
//! store fingerprints are preserved bit-identically — adaptation may only
//! change latency, goodput and shed counts, never results.

mod actions;
mod budget;
mod controller;
mod policy;

pub use actions::{AdaptAction, Saturation};
pub use budget::fair_budgets;
pub use controller::{AdaptiveController, AdaptiveTick};
pub use policy::{AdaptivePolicy, EpochDelta, TenantDelta};
