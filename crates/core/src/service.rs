//! The unified INC-as-a-service facade: one typed surface for the whole
//! tenant lifecycle.
//!
//! [`ClickIncService`] owns both halves of the system — a [`Controller`]
//! (where programs run) and a [`TrafficEngine`] (how traffic reaches them) —
//! and removes the hand-wired hook plumbing the two-API world needed:
//!
//! * [`ClickIncService::plan`] — compile + place as a **pure dry-run**:
//!   reports devices, resource demand and the predicted remaining ratio
//!   without touching the ledger or any plane;
//! * [`ClickIncService::commit`] — book resources, install snippets, and
//!   mirror the tenant's hops onto the running engine atomically.  Every
//!   fallible check precedes the first mutation, so a rejected commit leaves
//!   the pre-commit state bit-identical;
//! * [`ClickIncService::deploy_all`] — batch commit with **all-or-nothing**
//!   rollback: if any request in the batch fails to plan or commit, every
//!   tenant already committed by the batch is removed again and the engine
//!   never sees any of them;
//! * [`TenantHandle`] — the per-tenant capability returned by a successful
//!   commit: numeric id, hops, live telemetry, workload injection, cache
//!   pre-population, and removal;
//! * [`ClickIncService::planner`] — the batch planning surface
//!   ([`Planner`]): concurrent solving on worker threads, plan caching
//!   keyed on `(request fingerprint, controller epoch)`, and composable
//!   [`AdmissionPolicy`] gates threaded through every commit.

use crate::controller::{Controller, DeploymentPlan};
use crate::error::ClickIncError;
use crate::planner::{PlanCache, Planner};
use crate::policy::{
    AdmissionContext, AdmissionDecision, AdmissionPolicy, DeviceDenylist, PolicyChain,
};
use crate::request::ServiceRequest;
use crate::sharding::sharding_mode_for;
use clickinc_ir::Value;
use clickinc_runtime::workload::Workload;
use clickinc_runtime::{
    DeviceHealth, EngineConfig, EngineHandle, RunOutcome, ShardingMode, TelemetryReport, TenantHop,
    TenantStats, TrafficEngine, WorkloadReport,
};
use clickinc_synthesis::DeploymentDelta;
use clickinc_topology::Topology;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// How [`ClickIncService::commit`] picks a freshly committed tenant's
/// sharding mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitialSharding {
    /// Derive the mode from the deployed program's state profile
    /// ([`crate::sharding::sharding_mode_for`]): flow-shardable programs
    /// spread across every shard immediately.  The default.
    #[default]
    Derived,
    /// Start every tenant on one shard ([`ShardingMode::ByTenant`]) and let
    /// the adaptive runtime spread it only under observed saturation —
    /// conservative placement, telemetry-driven scale-out.
    Pinned,
}

/// The single service surface for INC tenants (paper §3.2, §6): owns the
/// controller and the sharded traffic engine, exposes transactional deploys
/// and per-tenant handles.  See the [module docs](self) for the lifecycle.
pub struct ClickIncService {
    controller: Arc<Mutex<Controller>>,
    engine: TrafficEngine,
    /// Solved plans keyed on `(request fingerprint, controller epoch)`,
    /// shared by every [`Planner`] this service hands out.
    plan_cache: Mutex<PlanCache>,
    /// The service-wide admission chain; empty (admit everything) by
    /// default.  Every commit path consults it before the first mutation.
    policy: Mutex<PolicyChain>,
    /// How commits choose a new tenant's sharding mode.
    initial_sharding: Mutex<InitialSharding>,
    /// Tenants displaced by a device failure that could not be re-placed:
    /// parked with their original requests, retried on every
    /// [`restore_device`](ClickIncService::restore_device).
    degraded: Mutex<BTreeMap<String, DegradedTenant>>,
    /// Requests refused by admission ([`ClickIncError::Rejected`]) and
    /// parked by [`deploy_or_queue`](ClickIncService::deploy_or_queue):
    /// re-tried in priority order whenever capacity frees up (tenant
    /// removal, device restore, or an explicit
    /// [`drain_retries`](ClickIncService::drain_retries)).
    retry: Mutex<RetryQueue>,
}

/// The admission waiting room: requests refused by policy, ordered for
/// retry by priority (descending) then arrival.
#[derive(Default)]
struct RetryQueue {
    entries: Vec<RetryEntry>,
    next_seq: u64,
}

struct RetryEntry {
    seq: u64,
    request: ServiceRequest,
}

impl RetryQueue {
    /// Park a request; a re-submission for the same user replaces the old
    /// entry (and takes a fresh arrival slot).
    fn push(&mut self, request: ServiceRequest) {
        self.entries.retain(|e| e.request.user != request.user);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(RetryEntry { seq, request });
    }

    /// Remove and return every entry, highest priority first (FIFO within a
    /// priority level).
    fn take_ordered(&mut self) -> Vec<RetryEntry> {
        let mut entries = std::mem::take(&mut self.entries);
        entries.sort_by_key(|e| (std::cmp::Reverse(e.request.priority), e.seq));
        entries
    }
}

/// What one [`ClickIncService::drain_retries`] pass did with the queued
/// requests.
pub struct RetryReport {
    /// Handles of the requests that now passed admission and are serving.
    pub admitted: Vec<TenantHandle>,
    /// Requests still refused by admission — they stay queued for the next
    /// drain.
    pub requeued: usize,
    /// Requests that failed for a non-admission reason (compile, placement,
    /// duplicate user, …), with the error: these are dropped from the queue
    /// — waiting cannot fix them.
    pub dropped: Vec<(String, ClickIncError)>,
}

/// A parked tenant: its original request (for the retry) and the failed
/// device that displaced it.
struct DegradedTenant {
    request: ServiceRequest,
    device: String,
}

/// What one [`ClickIncService::fail_device`] or
/// [`restore_device`](ClickIncService::restore_device) call did to the
/// affected tenants.
#[derive(Debug)]
pub struct FailoverReport {
    /// The failed (or restored) device.
    pub device: String,
    /// Tenants re-placed through the full plan → verify → admission →
    /// commit chain and serving again.
    pub recovered: Vec<String>,
    /// Tenants that could not be re-placed, each as the typed
    /// [`ClickIncError::Degraded`] it is parked under.  They serve no
    /// traffic and hold no resources until a restore retries them.
    pub degraded: Vec<ClickIncError>,
}

impl FailoverReport {
    /// Whether every affected tenant is serving again.
    pub fn fully_recovered(&self) -> bool {
        self.degraded.is_empty()
    }
}

impl ClickIncService {
    /// Serve the given topology with the default engine sizing.
    pub fn new(topology: Topology) -> Result<ClickIncService, ClickIncError> {
        ClickIncService::with_config(topology, EngineConfig::default())
    }

    /// Serve the given topology with explicit engine sizing; rejects
    /// degenerate configs with [`ClickIncError::Engine`].
    pub fn with_config(
        topology: Topology,
        config: EngineConfig,
    ) -> Result<ClickIncService, ClickIncError> {
        ClickIncService::with_controller(Controller::new(topology), config)
    }

    /// Wrap an already configured controller (e.g. one built with
    /// [`Controller::with_fixed_weights`] for the ablation experiments).
    /// The controller must not have live deployments yet: the engine only
    /// sees tenants committed through the service.
    pub fn with_controller(
        controller: Controller,
        config: EngineConfig,
    ) -> Result<ClickIncService, ClickIncError> {
        let engine = TrafficEngine::try_new(config)?;
        Ok(ClickIncService {
            controller: Arc::new(Mutex::new(controller)),
            engine,
            plan_cache: Mutex::new(PlanCache::new()),
            policy: Mutex::new(PolicyChain::new()),
            initial_sharding: Mutex::new(InitialSharding::default()),
            degraded: Mutex::new(BTreeMap::new()),
            retry: Mutex::new(RetryQueue::default()),
        })
    }

    /// Choose how future commits pick a tenant's sharding mode (existing
    /// tenants are untouched).  [`InitialSharding::Pinned`] starts every
    /// tenant on one shard so the adaptive runtime
    /// ([`crate::AdaptiveRuntime`]) spreads it only under observed load.
    pub fn set_initial_sharding(&self, initial: InitialSharding) {
        *self.initial_sharding.lock().expect("sharding mutex") = initial;
    }

    /// The batch planning surface: concurrent solves, plan caching, and
    /// policy-gated commits — see [`Planner`].  Cheap to create; make one
    /// per batch and stack batch-scoped policies on it with
    /// [`Planner::with_policy`].
    pub fn planner(&self) -> Planner<'_> {
        Planner::new(self)
    }

    /// Install the service-wide admission policy, replacing the previous
    /// one.  Every commit — [`commit`](ClickIncService::commit),
    /// [`deploy`](ClickIncService::deploy),
    /// [`deploy_all`](ClickIncService::deploy_all) and every [`Planner`]
    /// path — consults it before the first mutation; a refusal surfaces as
    /// [`ClickIncError::Rejected`] and changes nothing.  Install a
    /// [`PolicyChain`] to compose several rules; the default (empty chain)
    /// admits everything.
    pub fn set_admission_policy(&self, policy: impl AdmissionPolicy + 'static) {
        *self.policy.lock().expect("policy mutex") = PolicyChain::new().with(policy);
    }

    /// Remove the service-wide admission policy (back to admit-everything).
    pub fn clear_admission_policy(&self) {
        *self.policy.lock().expect("policy mutex") = PolicyChain::new();
    }

    /// The shared plan cache (crate-internal: the [`Planner`] reads through
    /// it under the controller lock).
    pub(crate) fn plan_cache(&self) -> MutexGuard<'_, PlanCache> {
        self.plan_cache.lock().expect("plan cache mutex")
    }

    /// Evaluate the service-wide admission chain, then `extra` (a planner's
    /// batch-scoped policies), against `plan` at the current controller
    /// state.  Called with the controller lock held, *before* any mutation.
    ///
    /// Staleness is checked first: a plan priced against a dead ledger must
    /// surface as [`ClickIncError::StalePlan`] (re-plan and retry — the
    /// re-solve may well be admissible), never as a policy verdict reached
    /// on stale numbers.
    pub(crate) fn admission_gate(
        &self,
        controller: &Controller,
        plan: &DeploymentPlan,
        extra: Option<&PolicyChain>,
    ) -> Result<(), ClickIncError> {
        if plan.epoch() != controller.epoch() {
            return Err(ClickIncError::StalePlan {
                user: plan.user().to_string(),
                planned_epoch: plan.epoch(),
                current_epoch: controller.epoch(),
            });
        }
        let ctx = AdmissionContext {
            plan,
            active_tenants: controller.active_users().len(),
            remaining_ratio: controller.remaining_resource_ratio(),
        };
        let mut decision = self.policy.lock().expect("policy mutex").evaluate(&ctx);
        if decision.is_admit() {
            if let Some(extra) = extra {
                decision = extra.evaluate(&ctx);
            }
        }
        match decision {
            AdmissionDecision::Admit => Ok(()),
            AdmissionDecision::Reject { policy, reason } => {
                Err(ClickIncError::Rejected { user: plan.user().to_string(), policy, reason })
            }
        }
    }

    /// Low-level access to the owned controller (the ablation escape hatch).
    /// Deploys made directly through this guard are **not** mirrored onto
    /// the engine; use it for inspection, or wire
    /// [`Controller::attach_engine`] yourself.
    pub fn controller(&self) -> MutexGuard<'_, Controller> {
        self.controller.lock().expect("controller mutex")
    }

    /// A clonable handle to the serving engine (for custom drivers).
    pub fn engine_handle(&self) -> EngineHandle {
        self.engine.handle()
    }

    /// Number of engine shards serving traffic.
    pub fn shards(&self) -> usize {
        self.engine.shards()
    }

    /// Compile + place `request` as a pure dry-run.  The controller state is
    /// untouched: planning never changes the remaining resource ratio, the
    /// active user set, or any plane.
    pub fn plan(&self, request: &ServiceRequest) -> Result<DeploymentPlan, ClickIncError> {
        self.controller().plan(request)
    }

    /// Commit a plan: admission gate, book resources, install snippets, and
    /// mirror the tenant onto the engine.  Returns the tenant's handle.
    ///
    /// The installed [`AdmissionPolicy`] chain is consulted before the
    /// first mutation — a policy refusal is [`ClickIncError::Rejected`] and
    /// changes nothing.  The controller lock is held across the engine
    /// mirroring, so concurrent commits and removals reach the engine in
    /// controller order — a removal can never overtake the add it revokes.
    pub fn commit(&self, plan: DeploymentPlan) -> Result<TenantHandle, ClickIncError> {
        let mut controller = self.controller();
        self.admission_gate(&controller, &plan, None)?;
        self.commit_locked(&mut controller, plan)
    }

    /// Plan + gate + commit in one step, under a single controller lock — a
    /// concurrent commit between the phases cannot turn this call into a
    /// spurious [`ClickIncError::StalePlan`].
    pub fn deploy(&self, request: ServiceRequest) -> Result<TenantHandle, ClickIncError> {
        let mut controller = self.controller();
        let plan = controller.plan(&request)?;
        self.admission_gate(&controller, &plan, None)?;
        self.commit_locked(&mut controller, plan)
    }

    /// Commit + mirror with the controller lock already held.  Admission is
    /// the caller's concern (every public entry gates first).  The tenant's
    /// sharding mode is derived from the committed deployment's state
    /// profile: stateless and flow-keyed-state programs spread their flows
    /// across every engine shard, anything else pins to one shard.
    pub(crate) fn commit_locked(
        &self,
        controller: &mut Controller,
        plan: DeploymentPlan,
    ) -> Result<TenantHandle, ClickIncError> {
        let deployment = controller.commit(plan)?;
        let user = deployment.user.clone();
        let numeric_id = deployment.numeric_id;
        let hops = controller.tenant_hops(&user);
        let mode = self.initial_mode_for(&hops);
        self.engine.handle().add_tenant_sharded(&user, hops.clone(), mode.clone());
        Ok(self.handle_for(user, numeric_id, hops, mode))
    }

    /// The sharding mode a fresh commit gives a tenant with these hops,
    /// honoring the [`InitialSharding`] knob.  Shared by every commit path
    /// (service and planner), so the knob cannot be bypassed.
    pub(crate) fn initial_mode_for(&self, hops: &[TenantHop]) -> ShardingMode {
        match *self.initial_sharding.lock().expect("sharding mutex") {
            InitialSharding::Derived => sharding_mode_for(hops),
            InitialSharding::Pinned => ShardingMode::ByTenant,
        }
    }

    /// [`deploy`](ClickIncService::deploy), but an admission refusal parks
    /// the request in the retry queue instead of discarding it: the
    /// [`ClickIncError::Rejected`] is still returned (the tenant is *not*
    /// serving), and the request is re-tried — highest priority first —
    /// whenever capacity frees up: on every service-level
    /// [`remove`](ClickIncService::remove), every
    /// [`restore_device`](ClickIncService::restore_device), and every
    /// explicit [`drain_retries`](ClickIncService::drain_retries).
    ///
    /// Non-admission failures (compile, placement, …) are returned without
    /// queueing: waiting cannot fix them.
    pub fn deploy_or_queue(&self, request: ServiceRequest) -> Result<TenantHandle, ClickIncError> {
        match self.deploy(request.clone()) {
            Err(err @ ClickIncError::Rejected { .. }) => {
                self.retry.lock().expect("retry mutex").push(request);
                Err(err)
            }
            other => other,
        }
    }

    /// Retry every queued request (highest priority first, FIFO within a
    /// priority), one attempt each.  Requests that now pass admission are
    /// committed and returned; requests still refused stay queued; requests
    /// failing for any other reason are dropped with their error.
    pub fn drain_retries(&self) -> RetryReport {
        let entries = self.retry.lock().expect("retry mutex").take_ordered();
        let mut report = RetryReport { admitted: Vec::new(), requeued: 0, dropped: Vec::new() };
        for entry in entries {
            let user = entry.request.user.clone();
            match self.deploy(entry.request.clone()) {
                Ok(handle) => report.admitted.push(handle),
                Err(ClickIncError::Rejected { .. }) => {
                    report.requeued += 1;
                    // keep the original arrival slot so FIFO order survives
                    self.retry.lock().expect("retry mutex").entries.push(entry);
                }
                Err(err) => report.dropped.push((user, err)),
            }
        }
        report
    }

    /// Number of requests waiting in the admission retry queue.
    pub fn retry_queue_len(&self) -> usize {
        self.retry.lock().expect("retry mutex").entries.len()
    }

    /// Users waiting in the admission retry queue, in drain order (highest
    /// priority first).
    pub fn queued_users(&self) -> Vec<String> {
        let mut entries: Vec<(u8, u64, String)> = self
            .retry
            .lock()
            .expect("retry mutex")
            .entries
            .iter()
            .map(|e| (e.request.priority, e.seq, e.request.user.clone()))
            .collect();
        entries.sort_by_key(|(priority, seq, _)| (std::cmp::Reverse(*priority), *seq));
        entries.into_iter().map(|(_, _, user)| user).collect()
    }

    /// Speculatively re-solve up to `limit` cached-but-stale plans in the
    /// background of a quiet moment so the next lookup hits a fresh entry —
    /// see [`Planner::replan_stale`].  Returns the number refreshed.
    pub fn replan_stale(&self, limit: usize) -> usize {
        self.planner().replan_stale(limit)
    }

    /// Deploy a batch of requests with **all-or-nothing** semantics: if any
    /// request fails to plan, is refused by the admission policy, or fails
    /// to commit, every tenant this call already committed is removed
    /// again — the ledger ratio, the active user set and every plane's
    /// store return to their pre-call state bit-identical, and the engine
    /// never sees any tenant of the batch.
    ///
    /// Built on the [`Planner`]: the batch is solved in parallel on worker
    /// threads (plans are pure), then committed sequentially in request
    /// order — bit-identical to the sequential path, just faster to
    /// validate.  Use [`planner`](ClickIncService::planner) directly to add
    /// batch-scoped admission policies.
    pub fn deploy_all(
        &self,
        requests: Vec<ServiceRequest>,
    ) -> Result<Vec<TenantHandle>, ClickIncError> {
        self.planner().deploy_all(requests)
    }

    /// Remove a tenant by user id: release its resources, uninstall its
    /// snippets, quiesce its traffic on the engine.  (Equivalent to
    /// [`TenantHandle::remove`] when the handle is out of reach.)  A parked
    /// ([`ClickIncError::Degraded`]) tenant is un-parked too, so it will not
    /// resurrect on the next restore.
    /// A successful removal frees capacity, so the admission retry queue is
    /// drained afterwards: queued requests that now pass admission start
    /// serving (their handles are obtainable again via the controller;
    /// callers tracking them should use
    /// [`drain_retries`](ClickIncService::drain_retries) directly).
    pub fn remove(&self, user: &str) -> Result<DeploymentDelta, ClickIncError> {
        let delta = {
            let controller = self.controller();
            self.degraded.lock().expect("degraded mutex").remove(user);
            Self::remove_locked(controller, &self.engine.handle(), user)
        }?;
        self.drain_retries();
        Ok(delta)
    }

    /// Remove + engine quiesce with the controller lock held across both,
    /// mirroring the ordering guarantee of [`commit`](ClickIncService::commit).
    fn remove_locked(
        mut controller: MutexGuard<'_, Controller>,
        engine: &EngineHandle,
        user: &str,
    ) -> Result<DeploymentDelta, ClickIncError> {
        let delta = controller.remove(user)?;
        engine.remove_tenant(user);
        Ok(delta)
    }

    /// Re-place a live tenant through the full plan → verify → admission →
    /// commit chain: remove it (releasing its resources and quiescing its
    /// traffic), re-solve its original request against the *current* ledger
    /// and co-residents, gate the new plan exactly like a fresh deploy, and
    /// commit it.  This is the adaptive runtime's escalation path
    /// ([`AdaptAction::Replan`](clickinc_runtime::AdaptAction::Replan)): a
    /// tenant that stays saturated after resharding and budget resizing gets
    /// a fresh placement, but only one the verifier and every admission
    /// policy accept.
    ///
    /// If the re-plan fails — verification, placement, or an admission
    /// refusal — the original deployment is restored (its own solve,
    /// *bypassing* the admission gate: it was already admitted once, and a
    /// failed advisory re-placement must not turn into an outage) and the
    /// error is returned.  Telemetry counters survive the round-trip; the
    /// tenant gets a fresh numeric id either way.
    pub fn replace_tenant(&self, user: &str) -> Result<TenantHandle, ClickIncError> {
        let mut controller = self.controller();
        let request = controller
            .deployment(user)
            .map(|d| d.request.clone())
            .ok_or_else(|| ClickIncError::UnknownUser(user.to_string()))?;
        controller.remove(user)?;
        self.engine.handle().remove_tenant(user);
        match self.plan_gate_commit(&mut controller, &request) {
            Ok(handle) => Ok(handle),
            Err(err) => {
                let plan = controller
                    .plan(&request)
                    .expect("restoring a just-removed deployment re-solves");
                self.commit_locked(&mut controller, plan)
                    .expect("restoring a just-removed deployment re-commits");
                Err(err)
            }
        }
    }

    /// Fail a device: mark it down in both the topology (future placements
    /// route around it) and the serving engine (in-flight packets hitting it
    /// are lost and counted as fault losses), quiesce every tenant whose
    /// placement occupied it, and re-place each one through the full plan →
    /// verify → admission → commit chain with a [`DeviceDenylist`] seeded
    /// from the failed-device set.  Tenants that cannot be re-placed —
    /// placement is infeasible on the degraded topology, or an admission
    /// policy refuses the move — park in the typed
    /// [`ClickIncError::Degraded`] state: they hold no resources and serve
    /// no traffic, and every [`restore_device`](ClickIncService::restore_device)
    /// retries them.  Co-resident tenants placed elsewhere are untouched.
    pub fn fail_device(&self, device: &str) -> Result<FailoverReport, ClickIncError> {
        let mut controller = self.controller();
        let displaced = controller.fail_device(device)?;
        // structural cache invalidation: drop every cached plan occupying
        // the failed device — whatever its epoch bookkeeping says, a plan
        // touching a Down device must never be served again
        self.plan_cache().invalidate_touching(&[device.to_string()]);
        let engine = self.engine.handle();
        engine.set_device_health(device, DeviceHealth::Down);
        for request in &displaced {
            engine.remove_tenant(&request.user);
        }
        let mut recovered = Vec::new();
        let mut degraded = Vec::new();
        for request in displaced {
            match self.replace_displaced(&mut controller, &request) {
                Ok(_) => recovered.push(request.user.clone()),
                Err(err) => degraded.push(self.park(request, device, err)),
            }
        }
        Ok(FailoverReport { device: device.to_string(), recovered, degraded })
    }

    /// Restore a failed device: mark it up in the topology and the engine,
    /// then retry every parked ([`ClickIncError::Degraded`]) tenant through
    /// the full plan → verify → admission → commit chain.  Tenants that
    /// still cannot be placed stay parked (and appear in the report again).
    /// Restored capacity also drains the admission retry queue.
    pub fn restore_device(&self, device: &str) -> Result<FailoverReport, ClickIncError> {
        let mut controller = self.controller();
        controller.restore_device(device)?;
        self.engine.handle().set_device_health(device, DeviceHealth::Up);
        let parked: Vec<DegradedTenant> = {
            let mut map = self.degraded.lock().expect("degraded mutex");
            std::mem::take(&mut *map).into_values().collect()
        };
        let mut recovered = Vec::new();
        let mut degraded = Vec::new();
        for tenant in parked {
            match self.replace_displaced(&mut controller, &tenant.request) {
                Ok(_) => recovered.push(tenant.request.user.clone()),
                Err(err) => {
                    let device = tenant.device.clone();
                    degraded.push(self.park(tenant.request, &device, err));
                }
            }
        }
        drop(controller);
        self.drain_retries();
        Ok(FailoverReport { device: device.to_string(), recovered, degraded })
    }

    /// Tenants currently parked in the [`ClickIncError::Degraded`] state.
    pub fn degraded_tenants(&self) -> Vec<String> {
        self.degraded.lock().expect("degraded mutex").keys().cloned().collect()
    }

    /// Re-place one displaced tenant against the current (degraded)
    /// topology: plan, gate through the service chain *plus* a
    /// [`DeviceDenylist`] of every currently-down device, and commit.
    fn replace_displaced(
        &self,
        controller: &mut Controller,
        request: &ServiceRequest,
    ) -> Result<TenantHandle, ClickIncError> {
        let denylist = PolicyChain::new().with(DeviceDenylist::new(controller.down_devices()));
        let plan = controller.plan(request)?;
        self.admission_gate(controller, &plan, Some(&denylist))?;
        self.commit_locked(controller, plan)
    }

    /// Park a tenant that could not be re-placed; returns the typed error
    /// the report carries.
    fn park(&self, request: ServiceRequest, device: &str, err: ClickIncError) -> ClickIncError {
        let user = request.user.clone();
        let reason = err.to_string();
        self.degraded
            .lock()
            .expect("degraded mutex")
            .insert(user.clone(), DegradedTenant { request, device: device.to_string() });
        ClickIncError::Degraded { user, device: device.to_string(), reason }
    }

    /// Plan + admission gate + commit under an already-held controller lock.
    fn plan_gate_commit(
        &self,
        controller: &mut Controller,
        request: &ServiceRequest,
    ) -> Result<TenantHandle, ClickIncError> {
        let plan = controller.plan(request)?;
        self.admission_gate(controller, &plan, None)?;
        self.commit_locked(controller, plan)
    }

    /// Ids of the users with an active deployment.
    pub fn active_users(&self) -> Vec<String> {
        self.controller().active_users().iter().map(|s| s.to_string()).collect()
    }

    /// Fraction of network-wide resources still free.
    pub fn remaining_resource_ratio(&self) -> f64 {
        self.controller().remaining_resource_ratio()
    }

    /// Merged per-tenant telemetry snapshot (exact after
    /// [`flush`](ClickIncService::flush)).
    pub fn telemetry(&self) -> TelemetryReport {
        self.engine.handle().telemetry()
    }

    /// Barrier: returns once every engine shard has drained its queues.
    pub fn flush(&self) {
        self.engine.handle().flush()
    }

    /// Stop the engine, merge the per-shard stores, and return the final
    /// telemetry and network-wide object stores.
    pub fn finish(self) -> RunOutcome {
        self.engine.finish()
    }

    /// Build a tenant handle around the mode the engine was actually given
    /// (derived once per commit; never re-derived, so handle and engine
    /// cannot disagree).
    pub(crate) fn handle_for(
        &self,
        user: String,
        numeric_id: i64,
        hops: Vec<TenantHop>,
        mode: ShardingMode,
    ) -> TenantHandle {
        TenantHandle {
            user,
            numeric_id,
            hops,
            mode,
            controller: Arc::clone(&self.controller),
            engine: self.engine.handle(),
        }
    }
}

/// A live tenant on the service: returned by [`ClickIncService::commit`] and
/// [`ClickIncService::deploy_all`], valid until
/// [`remove`](TenantHandle::remove)d.
pub struct TenantHandle {
    user: String,
    numeric_id: i64,
    hops: Vec<TenantHop>,
    mode: ShardingMode,
    controller: Arc<Mutex<Controller>>,
    engine: EngineHandle,
}

impl TenantHandle {
    /// The tenant's user id.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// Numeric id the isolation guard matches on; traffic must carry it in
    /// its INC header to reach the program.
    pub fn numeric_id(&self) -> i64 {
        self.numeric_id
    }

    /// The tenant's programmable hops in traffic order, with the installed
    /// snippets.
    pub fn hops(&self) -> &[TenantHop] {
        &self.hops
    }

    /// How the engine partitions this tenant's traffic, derived from the
    /// deployed program's state profile
    /// ([`crate::sharding::sharding_mode_for`]): flow-sharded tenants spread
    /// across every shard, `ByTenant` tenants pin to one.
    pub fn sharding_mode(&self) -> &ShardingMode {
        &self.mode
    }

    /// Live telemetry snapshot for this tenant (cheap; exact after a flush).
    /// Includes the congestion counters — `shed_packets`,
    /// `backpressure_waits`, `queue_depth_hwm`, `per_shard_packets` — so
    /// overload is observable per tenant.
    pub fn telemetry(&self) -> Option<TenantStats> {
        self.engine.telemetry().tenant(&self.user).cloned()
    }

    /// Drain a workload into the engine on this tenant's behalf against the
    /// bounded ingress queues; see [`EngineHandle::run_workload`].  The
    /// report carries the admitted/shed split under the engine's
    /// [`clickinc_runtime::OverloadPolicy`].
    pub fn run_workload(
        &self,
        workload: &mut dyn Workload,
        max_packets: usize,
        inject_batch: usize,
    ) -> WorkloadReport {
        self.engine.run_workload(workload, max_packets, inject_batch)
    }

    /// Control-plane table write on every hop whose snippets declare
    /// `table` (e.g. pre-populating the tenant's isolation-renamed KVS
    /// cache) — no manual hop inspection required.
    pub fn populate_table(&self, table: &str, key: Vec<Value>, value: Vec<Value>) {
        for hop in &self.hops {
            let declares = hop.snippets.iter().any(|s| s.objects.iter().any(|o| o.name == table));
            if declares {
                self.engine.populate_table(
                    &self.user,
                    &hop.device,
                    table,
                    key.clone(),
                    value.clone(),
                );
            }
        }
    }

    /// Revoke the tenant: release its ledger resources, uninstall its
    /// snippets from the controller planes, and quiesce exactly its traffic
    /// on the engine (co-resident tenants keep flowing).
    pub fn remove(self) -> Result<DeploymentDelta, ClickIncError> {
        let controller = self.controller.lock().expect("controller mutex");
        ClickIncService::remove_locked(controller, &self.engine, &self.user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_lang::templates::{count_min_sketch, kvs_template, KvsParams};

    fn service() -> ClickIncService {
        ClickIncService::with_config(
            Topology::emulation_topology_all_tofino(),
            EngineConfig { shards: 2, batch_size: 32, ..Default::default() },
        )
        .expect("valid config")
    }

    fn kvs_request(user: &str) -> ServiceRequest {
        ServiceRequest::builder(user)
            .template(kvs_template(user, KvsParams { cache_depth: 1000, ..Default::default() }))
            .from_("pod0a")
            .to("pod2b")
            .build()
            .expect("valid request")
    }

    #[test]
    fn plan_is_a_pure_dry_run() {
        let service = service();
        let ratio = service.remaining_resource_ratio();
        let fingerprints = service.controller().plane_fingerprints();
        let plan = service.plan(&kvs_request("kvs0")).expect("plans");
        assert!(!plan.devices().is_empty());
        assert!(plan.predicted_remaining_ratio() <= ratio);
        assert_eq!(service.remaining_resource_ratio(), ratio, "plan books nothing");
        assert!(service.active_users().is_empty());
        assert_eq!(service.controller().plane_fingerprints(), fingerprints);
        service.finish();
    }

    #[test]
    fn commit_realizes_the_plans_prediction_and_registers_the_tenant() {
        let service = service();
        let plan = service.plan(&kvs_request("kvs0")).expect("plans");
        let predicted = plan.predicted_remaining_ratio();
        let tenant = service.commit(plan).expect("commits");
        assert_eq!(tenant.user(), "kvs0");
        assert_eq!(tenant.numeric_id(), 1);
        assert!(!tenant.hops().is_empty());
        assert_eq!(service.remaining_resource_ratio(), predicted, "dry-run was exact");
        assert_eq!(service.active_users(), vec!["kvs0".to_string()]);
        let stats = tenant.telemetry().expect("registered with the engine");
        assert_eq!(stats.packets, 0);
        service.finish();
    }

    fn must_fail(result: Result<TenantHandle, ClickIncError>) -> ClickIncError {
        match result {
            Err(err) => err,
            Ok(handle) => panic!("expected a failure, {} was admitted", handle.user()),
        }
    }

    #[test]
    fn rejected_requests_queue_and_drain_in_priority_order() {
        use crate::policy::MaxTenants;
        let service = service();
        service.set_admission_policy(MaxTenants { max_tenants: 1 });
        service.deploy(kvs_request("t1")).expect("first tenant admitted");
        // both refused by the tenant cap — parked, not discarded
        let err = must_fail(service.deploy_or_queue(kvs_request("t2").with_priority(1)));
        assert!(matches!(err, ClickIncError::Rejected { .. }), "got {err}");
        let err = must_fail(service.deploy_or_queue(kvs_request("t3").with_priority(5)));
        assert!(matches!(err, ClickIncError::Rejected { .. }), "got {err}");
        assert_eq!(service.retry_queue_len(), 2);
        assert_eq!(service.queued_users(), vec!["t3", "t2"], "priority order, not arrival");
        // a removal frees the slot and auto-drains: the high-priority waiter
        // gets it, the other stays queued
        service.remove("t1").expect("removes");
        assert_eq!(service.active_users(), vec!["t3".to_string()]);
        assert_eq!(service.queued_users(), vec!["t2"]);
        // the next removal admits the remaining waiter
        service.remove("t3").expect("removes");
        assert_eq!(service.active_users(), vec!["t2".to_string()]);
        assert_eq!(service.retry_queue_len(), 0);
        service.finish();
    }

    #[test]
    fn unfixable_queued_requests_are_dropped_on_drain() {
        use crate::policy::MaxTenants;
        let service = service();
        service.set_admission_policy(MaxTenants { max_tenants: 1 });
        service.deploy(kvs_request("t1")).expect("first tenant admitted");
        must_fail(service.deploy_or_queue(kvs_request("t2"))); // refused by the cap, queued
        service.clear_admission_policy();
        // t2 arrives again through the direct path and is admitted — the
        // queued copy now fails for a *non-admission* reason (duplicate
        // user), so the drain drops it with its error instead of re-queueing
        service.deploy(kvs_request("t2")).expect("direct deploy admitted");
        let report = service.drain_retries();
        assert!(report.admitted.is_empty());
        assert_eq!(report.requeued, 0);
        assert_eq!(report.dropped.len(), 1);
        assert_eq!(report.dropped[0].0, "t2");
        assert_eq!(service.retry_queue_len(), 0);
        service.finish();
    }

    #[test]
    fn stale_plans_are_rejected_not_misapplied() {
        let service = service();
        let plan_a = service.plan(&kvs_request("a")).expect("plans");
        let plan_b = service
            .plan(
                &ServiceRequest::builder("b")
                    .template(count_min_sketch("b", 3, 512))
                    .from_("pod0b")
                    .to("pod2b")
                    .build()
                    .unwrap(),
            )
            .expect("plans");
        service.commit(plan_a).expect("first commit wins");
        let err = service.commit(plan_b).map(|_| ()).unwrap_err();
        assert!(matches!(err, ClickIncError::StalePlan { .. }), "got {err}");
        // replanning at the new epoch succeeds
        let plan_b = service
            .plan(
                &ServiceRequest::builder("b")
                    .template(count_min_sketch("b", 3, 512))
                    .from_("pod0b")
                    .to("pod2b")
                    .build()
                    .unwrap(),
            )
            .expect("replans");
        service.commit(plan_b).expect("fresh plan commits");
        service.finish();
    }

    #[test]
    fn deploy_all_is_atomic() {
        let service = service();
        let ratio = service.remaining_resource_ratio();
        let fingerprints = service.controller().plane_fingerprints();
        let telemetry = service.telemetry();
        let err = service
            .deploy_all(vec![
                kvs_request("good"),
                ServiceRequest::builder("bad")
                    .source("forward()\n")
                    .from_("nowhere")
                    .to("pod2b")
                    .build()
                    .unwrap(),
            ])
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ClickIncError::UnknownHost(_)));
        assert_eq!(service.remaining_resource_ratio(), ratio);
        assert!(service.active_users().is_empty());
        assert_eq!(service.controller().plane_fingerprints(), fingerprints);
        assert_eq!(service.telemetry(), telemetry, "the engine never saw the batch");

        // the same batch without the poison pill commits both tenants
        let handles = service
            .deploy_all(vec![kvs_request("good"), kvs_request("good2")])
            .expect("valid batch commits");
        assert_eq!(handles.len(), 2);
        assert_eq!(service.active_users().len(), 2);
        service.finish();
    }

    #[test]
    fn failed_devices_displace_and_recover_their_tenants() {
        let service = service();
        service.deploy(kvs_request("kvs0")).expect("deploys");
        let device = {
            let c = service.controller();
            let id = *c.devices_of("kvs0").first().expect("placed somewhere");
            c.topology().node(id).name.clone()
        };
        let report = service.fail_device(&device).expect("known device");
        assert_eq!(report.device, device);
        assert_eq!(
            report.recovered.len() + report.degraded.len(),
            1,
            "the placed tenant was displaced"
        );
        if report.fully_recovered() {
            // the re-placement avoided the failed device
            let c = service.controller();
            let failed = c.topology().find(&device).expect("exists");
            assert!(!c.devices_of("kvs0").contains(&failed), "routed around the failure");
            assert_eq!(c.down_devices(), vec![device.clone()]);
        } else {
            assert!(matches!(
                report.degraded.first().expect("one parked"),
                ClickIncError::Degraded { user, .. } if user == "kvs0"
            ));
        }
        // restore: the device serves again and no tenant stays parked
        let restore = service.restore_device(&device).expect("restores");
        assert!(restore.fully_recovered(), "{:?}", restore.degraded);
        assert!(service.degraded_tenants().is_empty());
        assert!(service.active_users().contains(&"kvs0".to_string()));
        assert!(service.controller().down_devices().is_empty());
        // the round-trip left the ledger balanced
        service.remove("kvs0").expect("removes");
        assert_eq!(service.remaining_resource_ratio(), 1.0, "ledger balanced after round-trip");
        service.finish();
    }

    #[test]
    fn unplaceable_tenants_park_degraded_and_retry_on_restore() {
        let service = service();
        service.deploy(kvs_request("kvs0")).expect("deploys");
        let device = {
            let c = service.controller();
            let id = *c.devices_of("kvs0").first().expect("placed somewhere");
            c.topology().node(id).name.clone()
        };
        // a reject-everything admission policy makes every re-placement fail
        service.set_admission_policy(crate::policy::MaxTenants { max_tenants: 0 });
        let report = service.fail_device(&device).expect("fails");
        assert!(report.recovered.is_empty());
        let parked = report.degraded.first().expect("parked");
        assert!(
            matches!(parked, ClickIncError::Degraded { user, device: d, .. }
                if user == "kvs0" && d == &device),
            "got {parked}"
        );
        assert_eq!(service.degraded_tenants(), vec!["kvs0".to_string()]);
        assert!(service.active_users().is_empty(), "a parked tenant holds nothing");
        assert_eq!(service.remaining_resource_ratio(), 1.0, "bookings released");
        // still refused on restore: stays parked
        let restore = service.restore_device(&device).expect("restores");
        assert!(!restore.fully_recovered());
        assert_eq!(service.degraded_tenants(), vec!["kvs0".to_string()]);
        // policy lifted: the next restore revives it
        service.clear_admission_policy();
        let restore = service.restore_device(&device).expect("restores again");
        assert_eq!(restore.recovered, vec!["kvs0".to_string()]);
        assert!(service.degraded_tenants().is_empty());
        assert!(service.active_users().contains(&"kvs0".to_string()));
        service.finish();
    }

    #[test]
    fn tenant_handles_remove_cleanly() {
        let service = service();
        let tenant = service.deploy(kvs_request("kvs0")).expect("deploys");
        let ratio_with = service.remaining_resource_ratio();
        let delta = tenant.remove().expect("removes");
        assert!(delta.device_count() > 0);
        assert!(service.remaining_resource_ratio() >= ratio_with);
        assert!(service.active_users().is_empty());
        // removal by id also works for the service-level path
        let _tenant = service.deploy(kvs_request("kvs0")).expect("re-deploys");
        service.remove("kvs0").expect("removes by id");
        assert!(matches!(
            service.remove("kvs0").map(|_| ()).unwrap_err(),
            ClickIncError::UnknownUser(_)
        ));
        service.finish();
    }
}
