//! The data-plane interpreter: executes IR images/snippets on packets.

use crate::packet::Packet;
use crate::state::ObjectStore;
use crate::vm::{self, CompiledImage, ExecMode, RegFile, VmCtx};
use clickinc_device::DeviceModel;
use clickinc_ir::eval::{alu, compare};
use clickinc_ir::{Guard, IrProgram, ObjectKind, OpCode, Operand, Value};
use std::collections::{BTreeMap, BTreeSet};

/// What happens to the packet after the device processed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketAction {
    /// Continue along the normal forwarding path.
    Forward,
    /// Consumed / dropped by the device (e.g. aggregated or filtered).
    Drop,
    /// Bounced back towards the sender (e.g. a cache hit reply or a completed
    /// aggregation result).
    Back,
}

/// Result of processing one packet on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// The resulting action.
    pub action: PacketAction,
    /// Copies mirrored to the CPU / monitoring session.
    pub mirrored: Vec<Packet>,
    /// Processing latency contributed by this device in nanoseconds.
    pub latency_ns: f64,
    /// Number of IR instructions whose guard held (i.e. actually executed).
    pub instructions_executed: usize,
}

/// One emulated device data plane: the installed IR snippets, their stateful
/// objects, and the device model used for latency accounting.
#[derive(Debug, Clone)]
pub struct DevicePlane {
    /// Device name (topology node name).
    pub name: String,
    /// The device model (for latency and line-rate accounting).
    pub model: DeviceModel,
    /// Installed program snippets, executed in installation order.
    snippets: Vec<IrProgram>,
    /// Stateful object storage shared by all snippets on this device.
    store: ObjectStore,
    /// Object name → declared kind, maintained across install/uninstall so the
    /// per-packet state dispatch is a map lookup, not a snippet scan.
    object_kinds: BTreeMap<String, ObjectKind>,
    /// Total packets processed.
    pub packets_processed: u64,
    /// Total instructions executed.
    pub instructions_executed: u64,
    /// Per-tenant `RandInt` draw counters (user id → draws).  Keyed by tenant
    /// so one tenant's random stream is independent of co-resident traffic —
    /// a requirement for the runtime's shard-count invariance.
    rand_streams: BTreeMap<i64, u64>,
    /// Temporaries exported into the packet's Param field for downstream
    /// devices (set from the synthesizer's Param analysis; empty = nothing is
    /// carried).
    pub param_exports: Vec<String>,
    /// The install-time-compiled form of `snippets` (see [`crate::vm`]);
    /// rebuilt on every install/uninstall, `None` while nothing is installed.
    compiled: Option<CompiledImage>,
    /// The register file backing the compiled tier.
    regs: RegFile,
    /// Which execution tier [`DevicePlane::process`] runs.
    exec_mode: ExecMode,
}

/// Execution context handed to the opcode interpreter: the mutable store, the
/// object-kind index and the per-tenant random-draw counters (for `RandInt`).
struct ExecCtx<'a> {
    store: &'a mut ObjectStore,
    kinds: &'a BTreeMap<String, ObjectKind>,
    rand_streams: &'a mut BTreeMap<i64, u64>,
}

impl DevicePlane {
    /// Create an empty device plane.
    pub fn new(name: &str, model: DeviceModel) -> DevicePlane {
        DevicePlane {
            name: name.to_string(),
            model,
            snippets: Vec::new(),
            store: ObjectStore::new(),
            object_kinds: BTreeMap::new(),
            packets_processed: 0,
            instructions_executed: 0,
            rand_streams: BTreeMap::new(),
            param_exports: Vec::new(),
            compiled: None,
            regs: RegFile::default(),
            exec_mode: ExecMode::default(),
        }
    }

    /// Select the execution tier.  Both tiers execute the same installed IR
    /// and share the store and random streams, so switching mid-stream is
    /// seamless (and bit-identical — see `tests/compiled_vs_interp.rs`).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The currently selected execution tier.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// The compiled image, if any snippet is installed (inspection/snapshots).
    pub fn compiled_image(&self) -> Option<&CompiledImage> {
        self.compiled.as_ref()
    }

    /// Rebuild the compiled image from the installed snippets.  Object slots,
    /// hash seeds/moduli and the kind dispatch are resolved here, once, so the
    /// per-packet loop does no name lookups.
    fn recompile(&mut self) {
        if self.snippets.is_empty() {
            self.compiled = None;
            self.regs.reset(0, 0);
            return;
        }
        let image = vm::compile(&self.snippets, &self.object_kinds, &self.store);
        self.regs.reset(image.num_regs(), image.num_headers());
        self.compiled = Some(image);
    }

    /// Configure which temporaries are exported into the Param field after
    /// processing (from [`clickinc-synthesis`]'s `param_field_bits`).
    pub fn set_param_exports(&mut self, vars: Vec<String>) {
        self.param_exports = vars;
    }

    /// Install a program snippet (declares its objects).
    pub fn install(&mut self, snippet: IrProgram) {
        for obj in &snippet.objects {
            self.store.declare(obj);
            // the first declaration of a name wins, matching install order
            self.object_kinds.entry(obj.name.clone()).or_insert_with(|| obj.kind.clone());
        }
        self.snippets.push(snippet);
        self.recompile();
    }

    /// Remove every snippet owned by `owner` (matched against the snippet's
    /// program name) and drop the stateful objects no remaining snippet
    /// declares.  Other tenants' snippets and state are untouched — this is
    /// the per-tenant quiesce primitive behind live reconfiguration.
    ///
    /// Returns `true` if at least one snippet was removed.
    pub fn uninstall(&mut self, owner: &str) -> bool {
        let (removed, kept): (Vec<IrProgram>, Vec<IrProgram>) =
            std::mem::take(&mut self.snippets).into_iter().partition(|s| s.name == owner);
        self.snippets = kept;
        if removed.is_empty() {
            return false;
        }
        for obj in removed.iter().flat_map(|s| s.objects.iter()) {
            let still_declared =
                self.snippets.iter().any(|s| s.objects.iter().any(|o| o.name == obj.name));
            if !still_declared {
                self.store.remove_object(&obj.name);
                self.object_kinds.remove(&obj.name);
            }
        }
        self.recompile();
        true
    }

    /// [`DevicePlane::uninstall`], but hand back the departing tenant's
    /// exclusively-declared stateful objects (declarations and contents)
    /// instead of dropping them.  This is the extraction half of a live
    /// reshard: the runtime quiesces the tenant on this shard, pulls its
    /// state out here, and re-seeds it wherever the new sharding mode hosts
    /// the tenant.  Objects another resident still declares are left in
    /// place (and not extracted), exactly like plain `uninstall`.
    ///
    /// Returns `None` if `owner` had no snippet installed.
    pub fn uninstall_extract(&mut self, owner: &str) -> Option<ObjectStore> {
        let mut owned = false;
        let mut exclusive: BTreeSet<&str> = BTreeSet::new();
        for snippet in &self.snippets {
            if snippet.name == owner {
                owned = true;
                exclusive.extend(snippet.objects.iter().map(|o| o.name.as_str()));
            }
        }
        if !owned {
            return None;
        }
        for snippet in self.snippets.iter().filter(|s| s.name != owner) {
            for obj in &snippet.objects {
                exclusive.remove(obj.name.as_str());
            }
        }
        let extracted = self.store.clone_subset(|name| exclusive.contains(name));
        self.uninstall(owner);
        Some(extracted)
    }

    /// Whether any snippet is installed.
    pub fn has_program(&self) -> bool {
        !self.snippets.is_empty()
    }

    /// Names of the installed snippets (one per install, in order).
    pub fn installed_programs(&self) -> Vec<&str> {
        self.snippets.iter().map(|s| s.name.as_str()).collect()
    }

    /// Direct (control-plane) access to the object store, used to pre-populate
    /// tables such as the KVS cache.
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Read-only access to the object store (assertions in tests).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Process a packet through every installed snippet, on whichever
    /// execution tier is selected.
    pub fn process(&mut self, pkt: &mut Packet) -> ExecOutcome {
        match self.exec_mode {
            ExecMode::Compiled => self.process_compiled(pkt),
            ExecMode::Interpreted => self.process_interp(pkt),
        }
    }

    /// The compiled tier: run the packet through the register VM.
    fn process_compiled(&mut self, pkt: &mut Packet) -> ExecOutcome {
        self.packets_processed += 1;
        let (action, mirrored, executed) = match &self.compiled {
            Some(image) => {
                let mut ctx = VmCtx {
                    store: &mut self.store,
                    regs: &mut self.regs,
                    rand_streams: &mut self.rand_streams,
                };
                let run = vm::exec(image, &mut ctx, pkt);
                if run.action == PacketAction::Forward {
                    vm::export_params(image, &self.regs, &self.param_exports, pkt);
                }
                (run.action, run.mirrored, run.executed)
            }
            None => (PacketAction::Forward, Vec::new(), 0),
        };
        self.instructions_executed += executed as u64;
        let latency_ns =
            self.model.base_latency_ns + self.model.per_instr_latency_ns * executed as f64;
        ExecOutcome { action, mirrored, latency_ns, instructions_executed: executed }
    }

    /// The reference tier: walk the IR directly.
    fn process_interp(&mut self, pkt: &mut Packet) -> ExecOutcome {
        self.packets_processed += 1;
        let mut action = PacketAction::Forward;
        let mut mirrored = Vec::new();
        let mut executed = 0usize;
        let mut env: BTreeMap<String, Value> = BTreeMap::new();

        let mut ctx = ExecCtx {
            store: &mut self.store,
            kinds: &self.object_kinds,
            rand_streams: &mut self.rand_streams,
        };
        for snippet in &self.snippets {
            // the hoisted program-level guard (tenant isolation predicate)
            // gates the whole snippet once per packet
            if let Some(pre) = &snippet.precondition {
                if !eval_guard(pre, &env, pkt) {
                    continue;
                }
            }
            for instr in &snippet.instructions {
                let guard_ok =
                    instr.guard.as_ref().map(|g| eval_guard(g, &env, pkt)).unwrap_or(true);
                if !guard_ok {
                    continue;
                }
                executed += 1;
                execute(&instr.op, &mut ctx, &mut env, pkt, &mut action, &mut mirrored);
            }
        }
        // export the configured temporaries into the Param field so downstream
        // devices can continue the computation (paper §6, Param field)
        if action == PacketAction::Forward {
            for var in &self.param_exports {
                if let Some(value) = env.get(var) {
                    pkt.inc.param.insert(var.clone(), value.clone());
                }
            }
        }
        self.instructions_executed += executed as u64;
        let latency_ns =
            self.model.base_latency_ns + self.model.per_instr_latency_ns * executed as f64;
        ExecOutcome { action, mirrored, latency_ns, instructions_executed: executed }
    }

    /// Process a batch of packets back to back, returning one outcome per
    /// packet (identical to calling [`DevicePlane::process`] on each in
    /// order).  This is the drain primitive of the runtime's shard workers —
    /// one call per device-queue batch, keeping the batch boundary explicit
    /// for future per-batch optimizations (e.g. hoisting snippet dispatch).
    pub fn process_batch(&mut self, pkts: &mut [Packet]) -> Vec<ExecOutcome> {
        pkts.iter_mut().map(|p| self.process(p)).collect()
    }
}

fn eval_operand(op: &Operand, env: &BTreeMap<String, Value>, pkt: &Packet) -> Value {
    match op {
        Operand::Const(v) => v.clone(),
        Operand::Var(name) => env
            .get(name)
            .cloned()
            .or_else(|| pkt.inc.param.get(name).cloned())
            .unwrap_or(Value::None),
        Operand::Header(field) => pkt.inc.get(field),
        Operand::Meta(field) => match field.as_str() {
            "inc_user" => Value::Int(pkt.inc.user),
            "step" => Value::Int(pkt.inc.step),
            _ => Value::None,
        },
    }
}

fn eval_guard(guard: &Guard, env: &BTreeMap<String, Value>, pkt: &Packet) -> bool {
    guard.all.iter().all(|p| {
        let lhs = eval_operand(&p.lhs, env, pkt);
        let rhs = eval_operand(&p.rhs, env, pkt);
        compare(&lhs, p.op, &rhs)
    })
}

fn execute(
    op: &OpCode,
    ctx: &mut ExecCtx<'_>,
    env: &mut BTreeMap<String, Value>,
    pkt: &mut Packet,
    action: &mut PacketAction,
    mirrored: &mut Vec<Packet>,
) {
    match op {
        OpCode::Assign { dest, src } => {
            let v = eval_operand(src, env, pkt);
            env.insert(dest.clone(), v);
        }
        OpCode::Alu { dest, op, lhs, rhs, float } => {
            let a = eval_operand(lhs, env, pkt);
            let b = eval_operand(rhs, env, pkt);
            env.insert(dest.clone(), alu(*op, &a, &b, *float));
        }
        OpCode::Cmp { dest, op, lhs, rhs } => {
            let a = eval_operand(lhs, env, pkt);
            let b = eval_operand(rhs, env, pkt);
            env.insert(dest.clone(), Value::Bool(compare(&a, *op, &b)));
        }
        OpCode::Hash { dest, object, keys } => {
            let key_values: Vec<Value> = keys.iter().map(|k| eval_operand(k, env, pkt)).collect();
            env.insert(dest.clone(), Value::Int(ctx.store.hash(object, &key_values)));
        }
        OpCode::ReadState { dest, object, index } => {
            let v = read_state(ctx, object, index, env, pkt);
            env.insert(dest.clone(), v);
        }
        OpCode::WriteState { object, index, value } => {
            let values: Vec<Value> = value.iter().map(|v| eval_operand(v, env, pkt)).collect();
            write_state(ctx, object, index, values, env, pkt);
        }
        OpCode::CountState { dest, object, index, delta } => {
            let d = eval_operand(delta, env, pkt).as_int().unwrap_or(1);
            let result = count_state(ctx, object, index, d, env, pkt);
            if let Some(dest) = dest {
                env.insert(dest.clone(), Value::Int(result));
            }
        }
        OpCode::ClearState { object } => ctx.store.clear(object),
        OpCode::DeleteState { object, index } => {
            let keys: Vec<Value> = index.iter().map(|i| eval_operand(i, env, pkt)).collect();
            ctx.store.delete(object, &keys);
        }
        OpCode::Drop => *action = PacketAction::Drop,
        OpCode::Forward => {
            if *action != PacketAction::Back {
                *action = PacketAction::Forward;
            }
        }
        OpCode::Back { updates } => {
            for (field, value) in updates {
                let v = eval_operand(value, env, pkt);
                pkt.inc.set(field, v);
            }
            *action = PacketAction::Back;
        }
        OpCode::Mirror { updates } => {
            let mut copy = pkt.clone();
            for (field, value) in updates {
                let v = eval_operand(value, env, pkt);
                copy.inc.set(field, v);
            }
            mirrored.push(copy);
        }
        OpCode::Multicast { .. } => {
            // modelled as a mirror to the multicast engine
            mirrored.push(pkt.clone());
        }
        OpCode::CopyTo { .. } => {
            // report-to-CPU: modelled as a mirrored digest
            mirrored.push(pkt.clone());
        }
        OpCode::SetHeader { field, value } => {
            let v = eval_operand(value, env, pkt);
            pkt.inc.set(field, v);
        }
        OpCode::Crypto { dest, input, .. } => {
            let v = eval_operand(input, env, pkt).as_int().unwrap_or(0);
            env.insert(dest.clone(), Value::Int(v ^ 0x5a5a_5a5a));
        }
        OpCode::RandInt { dest, bound } => {
            let b = eval_operand(bound, env, pkt).as_int().unwrap_or(i64::MAX).max(1);
            // a splitmix64 stream seeded by the tenant id and advanced one
            // draw at a time: the sequence a tenant observes is independent
            // of co-resident traffic and of how planes are sharded
            let draw = ctx.rand_streams.entry(pkt.inc.user).or_insert(0);
            *draw += 1;
            let mut z = (pkt.inc.user as u64) ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            env.insert(dest.clone(), Value::Int((z % b as u64) as i64));
        }
        OpCode::Checksum { dest, inputs } => {
            let sum: i64 =
                inputs.iter().map(|i| eval_operand(i, env, pkt).as_int().unwrap_or(0)).sum();
            env.insert(dest.clone(), Value::Int(sum & 0xffff));
        }
        OpCode::NoOp => {}
    }
}

fn read_state(
    ctx: &ExecCtx<'_>,
    object: &str,
    index: &[Operand],
    env: &BTreeMap<String, Value>,
    pkt: &Packet,
) -> Value {
    let idx: Vec<Value> = index.iter().map(|i| eval_operand(i, env, pkt)).collect();
    match ctx.kinds.get(object) {
        Some(ObjectKind::Table { .. }) => ctx.store.table_get(object, &idx),
        Some(ObjectKind::Sketch { .. }) => {
            Value::Int(ctx.store.sketch_estimate(object, idx.first().unwrap_or(&Value::None)))
        }
        Some(ObjectKind::Hash { .. }) => Value::Int(ctx.store.hash(object, &idx)),
        _ => {
            let (row, cell) = row_and_cell(&idx);
            Value::Int(ctx.store.array_read(object, row, cell))
        }
    }
}

fn write_state(
    ctx: &mut ExecCtx<'_>,
    object: &str,
    index: &[Operand],
    values: Vec<Value>,
    env: &BTreeMap<String, Value>,
    pkt: &Packet,
) {
    let idx: Vec<Value> = index.iter().map(|i| eval_operand(i, env, pkt)).collect();
    match ctx.kinds.get(object) {
        Some(ObjectKind::Table { .. }) => {
            ctx.store.table_write(object, &idx, values);
        }
        Some(ObjectKind::Sketch { .. }) => {
            let delta = values.first().and_then(Value::as_int).unwrap_or(1);
            ctx.store.sketch_count(object, idx.first().unwrap_or(&Value::None), delta);
        }
        _ => {
            let (row, cell) = row_and_cell(&idx);
            let v = values.first().and_then(Value::as_int).unwrap_or(0);
            ctx.store.array_write(object, row, cell, v);
        }
    }
}

fn count_state(
    ctx: &mut ExecCtx<'_>,
    object: &str,
    index: &[Operand],
    delta: i64,
    env: &BTreeMap<String, Value>,
    pkt: &Packet,
) -> i64 {
    let idx: Vec<Value> = index.iter().map(|i| eval_operand(i, env, pkt)).collect();
    match ctx.kinds.get(object) {
        Some(ObjectKind::Sketch { .. }) => {
            ctx.store.sketch_count(object, idx.first().unwrap_or(&Value::None), delta)
        }
        _ => {
            let (row, cell) = row_and_cell(&idx);
            ctx.store.array_add(object, row, cell, delta)
        }
    }
}

fn row_and_cell(idx: &[Value]) -> (u32, u32) {
    match idx.len() {
        0 => (0, 0),
        1 => (0, idx[0].as_int().unwrap_or(0).unsigned_abs() as u32),
        _ => (
            idx[0].as_int().unwrap_or(0).unsigned_abs() as u32,
            idx[1].as_int().unwrap_or(0).unsigned_abs() as u32,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{gradient_packet, kvs_request};
    use clickinc_frontend::compile_source;
    use clickinc_lang::templates::{
        count_min_sketch, dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams,
        MlAggParams,
    };

    fn plane_with(name: &str, source: &str) -> DevicePlane {
        let ir = compile_source(name, source).unwrap();
        let mut plane = DevicePlane::new("SW0", DeviceModel::tofino());
        plane.install(ir);
        plane
    }

    #[test]
    fn mlagg_aggregates_gradients_in_network() {
        let dims = 4usize;
        let workers = 3usize;
        let t = mlagg_template(
            "mlagg",
            MlAggParams {
                dims: dims as u32,
                num_workers: workers as u32,
                num_aggregators: 64,
                ..Default::default()
            },
        );
        let mut plane = plane_with("mlagg", &t.source);
        let mut result: Option<Packet> = None;
        for w in 0..workers {
            let values: Vec<i64> = (0..dims).map(|d| (w as i64 + 1) * 10 + d as i64).collect();
            let mut pkt = gradient_packet("w", "ps", 0, 7, w, dims, &values);
            let outcome = plane.process(&mut pkt);
            if w + 1 < workers {
                assert_eq!(outcome.action, PacketAction::Drop, "worker {w} should be absorbed");
            } else {
                assert_eq!(outcome.action, PacketAction::Back, "last worker releases the result");
                result = Some(pkt);
            }
        }
        let result = result.expect("aggregation result produced");
        for d in 0..dims {
            let expected: i64 = (0..workers as i64).map(|w| (w + 1) * 10 + d as i64).sum();
            assert_eq!(
                result.inc.get(&format!("data_{d}")),
                Value::Int(expected),
                "dimension {d} aggregated incorrectly"
            );
        }
        assert!(plane.instructions_executed > 0);
    }

    #[test]
    fn mlagg_ignores_duplicate_worker_contributions() {
        let t = mlagg_template(
            "mlagg",
            MlAggParams { dims: 2, num_workers: 2, num_aggregators: 16, ..Default::default() },
        );
        let mut plane = plane_with("mlagg", &t.source);
        let mut first = gradient_packet("w", "ps", 0, 3, 0, 2, &[5, 5]);
        plane.process(&mut first);
        // the same worker retransmits: bitmap check must not double-count
        let mut dup = gradient_packet("w", "ps", 0, 3, 0, 2, &[5, 5]);
        let outcome = plane.process(&mut dup);
        assert_eq!(outcome.action, PacketAction::Forward, "duplicate falls through to the PS");
        let mut second = gradient_packet("w", "ps", 0, 3, 1, 2, &[7, 7]);
        let done = plane.process(&mut second);
        assert_eq!(done.action, PacketAction::Back);
        assert_eq!(second.inc.get("data_0"), Value::Int(12));
    }

    #[test]
    fn kvs_cache_hit_bounces_and_miss_counts_in_the_sketch() {
        let t = kvs_template("kvs", KvsParams { cache_depth: 128, ..Default::default() });
        let mut plane = plane_with("kvs", &t.source);
        // control plane installs a hot key
        plane.store_mut().table_write("cache", &[Value::Int(42)], vec![Value::Int(4242)]);

        let mut hit = kvs_request("c", "s", 0, 42);
        let outcome = plane.process(&mut hit);
        assert_eq!(outcome.action, PacketAction::Back, "cache hit replies from the switch");
        assert_eq!(hit.inc.get("vals"), Value::Int(4242));
        assert_eq!(hit.inc.get("op"), Value::Int(2), "op rewritten to REPLY");

        let mut miss = kvs_request("c", "s", 0, 7);
        let outcome = plane.process(&mut miss);
        assert_eq!(outcome.action, PacketAction::Forward, "miss goes to the server");
        assert!(plane.store().sketch_estimate("cms", &Value::Int(7)) >= 1);
    }

    #[test]
    fn dqacc_filters_duplicate_values() {
        let t = dqacc_template("dq", DqAccParams { depth: 64, ways: 4 });
        let mut plane = plane_with("dq", &t.source);
        let mk = |v: i64| {
            let mut fields = std::collections::BTreeMap::new();
            fields.insert("value".to_string(), Value::Int(v));
            Packet::new("c", "db", 0, fields)
        };
        let mut first = mk(9);
        assert_eq!(plane.process(&mut first).action, PacketAction::Forward);
        let mut dup = mk(9);
        assert_eq!(plane.process(&mut dup).action, PacketAction::Drop, "duplicate filtered");
        let mut other = mk(10);
        assert_eq!(plane.process(&mut other).action, PacketAction::Forward);
    }

    #[test]
    fn cms_module_counts_every_packet() {
        let t = count_min_sketch("cms", 3, 256);
        let mut plane = plane_with("cms", &t.source);
        for _ in 0..10 {
            let mut pkt = kvs_request("c", "s", 0, 5);
            plane.process(&mut pkt);
        }
        assert!(plane.store().sketch_estimate("mem", &Value::Int(5)) >= 10);
    }

    #[test]
    fn latency_scales_with_instructions_executed() {
        let t = count_min_sketch("cms", 3, 256);
        let mut plane = plane_with("cms", &t.source);
        let mut pkt = kvs_request("c", "s", 0, 1);
        let outcome = plane.process(&mut pkt);
        assert!(outcome.latency_ns > plane.model.base_latency_ns);
        let empty = DevicePlane::new("SW1", DeviceModel::tofino());
        assert!(!empty.has_program());
    }

    #[test]
    fn sparse_deletion_reduces_wire_size_downstream() {
        // a tiny program that removes two vector fields
        let src = "del(hdr.data[0])\ndel(hdr.data[1])\nforward()\n";
        let mut plane = plane_with("sparse", src);
        let mut pkt = gradient_packet("w", "ps", 0, 1, 0, 4, &[0, 0, 3, 4]);
        let before = pkt.wire_bytes();
        let outcome = plane.process(&mut pkt);
        assert_eq!(outcome.action, PacketAction::Forward);
        assert!(pkt.wire_bytes() < before, "deleted fields shrink the packet");
    }

    #[test]
    fn process_batch_matches_sequential_processing() {
        let t = kvs_template("kvs", KvsParams { cache_depth: 128, ..Default::default() });
        let mut seq = plane_with("kvs", &t.source);
        let mut batched = seq.clone();
        seq.store_mut().table_write("cache", &[Value::Int(1)], vec![Value::Int(11)]);
        batched.store_mut().table_write("cache", &[Value::Int(1)], vec![Value::Int(11)]);

        let keys = [1i64, 2, 1, 3, 1, 2];
        let mut pkts: Vec<Packet> = keys.iter().map(|k| kvs_request("c", "s", 0, *k)).collect();
        let expected: Vec<ExecOutcome> = keys
            .iter()
            .map(|k| {
                let mut p = kvs_request("c", "s", 0, *k);
                seq.process(&mut p)
            })
            .collect();
        let got = batched.process_batch(&mut pkts);
        assert_eq!(got, expected);
        assert_eq!(batched.packets_processed, seq.packets_processed);
    }

    #[test]
    fn randint_streams_are_per_tenant_and_unaffected_by_co_residents() {
        use clickinc_ir::{CmpOp, Guard, Instruction, Operand, Predicate};
        let randint_prog = |name: &str, user: i64| {
            let guard = Guard {
                all: vec![Predicate::new(
                    Operand::Meta("inc_user".into()),
                    CmpOp::Eq,
                    Operand::int(user),
                )],
            };
            let mut p = IrProgram::new(name);
            p.instructions.push(Instruction::guarded(
                0,
                OpCode::RandInt { dest: format!("{name}_r"), bound: Operand::int(1_000_000) },
                guard.clone(),
            ));
            p.instructions.push(Instruction::guarded(
                1,
                OpCode::SetHeader { field: "r".into(), value: Operand::Var(format!("{name}_r")) },
                guard,
            ));
            p
        };
        // tenant 1 alone on a plane vs co-resident with tenant 2
        let mut solo = DevicePlane::new("SW0", DeviceModel::tofino());
        solo.install(randint_prog("t1", 1));
        let mut shared = DevicePlane::new("SW0", DeviceModel::tofino());
        shared.install(randint_prog("t1", 1));
        shared.install(randint_prog("t2", 2));
        let draw = |plane: &mut DevicePlane, user: i64| {
            let mut pkt = kvs_request("c", "s", user, 1);
            plane.process(&mut pkt);
            pkt.inc.get("r")
        };
        for _ in 0..10 {
            let alone = draw(&mut solo, 1);
            let _ = draw(&mut shared, 2); // interleaved co-resident traffic
            let shared_draw = draw(&mut shared, 1);
            assert_eq!(alone, shared_draw, "tenant 1's stream must ignore tenant 2");
            assert!(matches!(alone, Value::Int(v) if (0..1_000_000).contains(&v)));
        }
    }

    #[test]
    fn uninstall_removes_only_the_owners_snippets_and_state() {
        let kvs = kvs_template("kvs", KvsParams { cache_depth: 64, ..Default::default() });
        let cms = count_min_sketch("mon", 3, 128);
        let mut plane = DevicePlane::new("SW0", DeviceModel::tofino());
        plane.install(compile_source("kvs", &kvs.source).unwrap());
        plane.install(compile_source("mon", &cms.source).unwrap());
        assert_eq!(plane.installed_programs(), vec!["kvs", "mon"]);
        plane.store_mut().table_write("cache", &[Value::Int(4)], vec![Value::Int(44)]);
        let mut pkt = kvs_request("c", "s", 0, 9);
        plane.process(&mut pkt);
        assert!(plane.store().sketch_estimate("mem", &Value::Int(9)) >= 1, "cms counted");

        assert!(plane.uninstall("kvs"));
        assert!(!plane.uninstall("kvs"), "second removal is a no-op");
        assert_eq!(plane.installed_programs(), vec!["mon"]);
        assert!(!plane.store().contains("cache"), "kvs state dropped");
        assert!(plane.store().contains("mem"), "other tenant's state survives");
        // the surviving snippet still executes
        let mut pkt = kvs_request("c", "s", 0, 9);
        let outcome = plane.process(&mut pkt);
        assert_eq!(outcome.action, PacketAction::Forward);
        assert!(plane.store().sketch_estimate("mem", &Value::Int(9)) >= 2);
    }

    #[test]
    fn uninstall_extract_hands_back_exactly_the_owners_state() {
        let kvs = kvs_template("kvs", KvsParams { cache_depth: 64, ..Default::default() });
        let cms = count_min_sketch("mon", 3, 128);
        let mut plane = DevicePlane::new("SW0", DeviceModel::tofino());
        plane.install(compile_source("kvs", &kvs.source).unwrap());
        plane.install(compile_source("mon", &cms.source).unwrap());
        plane.store_mut().table_write("cache", &[Value::Int(4)], vec![Value::Int(44)]);
        let mut pkt = kvs_request("c", "s", 0, 9);
        plane.process(&mut pkt);

        assert!(plane.uninstall_extract("nobody").is_none());
        let extracted = plane.uninstall_extract("kvs").expect("kvs was installed");
        assert_eq!(plane.installed_programs(), vec!["mon"]);
        assert!(!plane.store().contains("cache"), "kvs state left the plane");
        assert!(plane.store().contains("mem"), "co-resident state survives");
        // the extracted store carries the kvs objects with their contents
        assert!(extracted.contains("cache"));
        assert_eq!(extracted.table_get("cache", &[Value::Int(4)]), Value::Int(44));
        assert!(!extracted.contains("mem"), "co-resident state is not extracted");
        // second extraction is a no-op
        assert!(plane.uninstall_extract("kvs").is_none());
    }
}
