//! Runtime storage for the stateful INC objects.
//!
//! Objects live in dense *slots*: the store keeps a name → slot index map for
//! control-plane access, and the per-packet paths (the register VM's compiled
//! state ops) address slots directly — a bounds-checked vector index instead
//! of a string-keyed map probe.  Slot indices are stable for the lifetime of
//! an object: removal tombstones the slot, and every iteration-order-sensitive
//! operation (merging, fingerprints) walks the name map in lexicographic
//! order, so the digest of a store is independent of its slot layout.

use clickinc_ir::{ObjectDecl, ObjectKind, SketchKind, Value};
use std::collections::BTreeMap;

/// Hash function used by sketches and hash objects: a small xorshift-based
/// mixer seeded per row so the rows are independent.
fn mix(seed: u64, value: u64) -> u64 {
    let mut x = value ^ (seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

fn value_key(v: &Value) -> u64 {
    match v {
        Value::Int(i) => *i as u64,
        Value::Float(f) => f.to_bits(),
        Value::Bool(b) => u64::from(*b),
        Value::Bytes(b) => b.iter().fold(1469598103934665603u64, |h, byte| {
            (h ^ u64::from(*byte)).wrapping_mul(1099511628211)
        }),
        Value::None => u64::MAX,
    }
}

fn table_key(key: &[Value]) -> u64 {
    key.iter().fold(0u64, |acc, v| mix(acc + 1, value_key(v)))
}

/// The name-derived seed of a hash object, computable at compile time so the
/// VM carries it as an immediate instead of re-deriving it per packet.
pub fn hash_seed(name: &str) -> u64 {
    name.bytes().fold(7u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)))
}

/// Hash `keys` under a precomputed seed and optional modulus — the shared
/// digest behind [`ObjectStore::hash`] and the VM's compiled hash ops.
pub fn hash_with_seed(seed: u64, modulus: Option<u32>, keys: &[Value]) -> i64 {
    let mut acc = seed;
    for k in keys {
        acc = mix(acc, value_key(k));
    }
    match modulus {
        Some(m) if m > 0 => (acc % u64::from(m)) as i64,
        _ => (acc & 0xffff) as i64,
    }
}

/// Runtime instance of one object.
#[derive(Debug, Clone)]
enum ObjectState {
    Array { rows: u32, size: u32, cells: BTreeMap<(u32, u32), i64> },
    Seq { size: u32, cells: BTreeMap<u32, i64> },
    Sketch { kind: SketchKind, rows: u32, cols: u32, counters: Vec<Vec<i64>> },
    Table { entries: BTreeMap<u64, Vec<Value>> },
    Hash { modulus: Option<u32> },
    Crypto,
}

/// The object store of one device.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    /// Object name → slot index (control-plane and iteration order).
    names: BTreeMap<String, usize>,
    /// Dense object storage; a removed object leaves a `None` tombstone so
    /// the surviving objects' slot indices stay valid.
    slots: Vec<Option<ObjectState>>,
}

impl ObjectStore {
    /// Create an empty store.
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    fn state(&self, name: &str) -> Option<&ObjectState> {
        self.names.get(name).and_then(|&slot| self.slots[slot].as_ref())
    }

    fn state_mut(&mut self, name: &str) -> Option<&mut ObjectState> {
        match self.names.get(name) {
            Some(&slot) => self.slots[slot].as_mut(),
            None => None,
        }
    }

    /// Declare (instantiate) an object.  Re-declaring an existing object keeps
    /// its current contents (idempotent deployment).
    pub fn declare(&mut self, decl: &ObjectDecl) {
        if self.names.contains_key(&decl.name) {
            return;
        }
        let state = match &decl.kind {
            ObjectKind::Array { rows, size, .. } => {
                ObjectState::Array { rows: *rows, size: *size, cells: BTreeMap::new() }
            }
            ObjectKind::Seq { size, .. } => {
                ObjectState::Seq { size: *size, cells: BTreeMap::new() }
            }
            ObjectKind::Sketch { kind, rows, cols, .. } => ObjectState::Sketch {
                kind: *kind,
                rows: *rows,
                cols: *cols,
                counters: vec![vec![0; *cols as usize]; *rows as usize],
            },
            ObjectKind::Table { .. } => ObjectState::Table { entries: BTreeMap::new() },
            ObjectKind::Hash { modulus, .. } => ObjectState::Hash { modulus: *modulus },
            ObjectKind::Crypto { .. } => ObjectState::Crypto,
        };
        self.names.insert(decl.name.clone(), self.slots.len());
        self.slots.push(Some(state));
    }

    /// Whether the object exists.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains_key(name)
    }

    /// The slot index of an object, fixed until the object is removed.  The
    /// VM resolves every state operand to a slot at compile time.
    pub fn slot_of(&self, name: &str) -> Option<usize> {
        self.names.get(name).copied()
    }

    /// The declared modulus of a hash object (`None` for undeclared objects
    /// or an unbounded hash), resolved at compile time by the VM.
    pub fn hash_modulus(&self, name: &str) -> Option<u32> {
        match self.state(name) {
            Some(ObjectState::Hash { modulus }) => *modulus,
            _ => None,
        }
    }

    /// Names of all declared table objects (control-plane enumeration, e.g.
    /// to pre-populate caches whose names were rewritten by isolation).
    pub fn table_names(&self) -> Vec<String> {
        self.names
            .iter()
            .filter(|(_, &slot)| matches!(self.slots[slot], Some(ObjectState::Table { .. })))
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Read an array/sequence cell (missing cells read as 0).  Row and index
    /// wrap at the declared bounds, mirroring the hardware's address masking.
    pub fn array_read(&self, name: &str, row: u32, index: u32) -> i64 {
        self.slot_of(name).map(|slot| self.array_read_slot(slot, row, index)).unwrap_or(0)
    }

    /// [`ObjectStore::array_read`] by slot index.
    pub fn array_read_slot(&self, slot: usize, row: u32, index: u32) -> i64 {
        match self.slots.get(slot).and_then(Option::as_ref) {
            Some(ObjectState::Array { cells, rows, size }) => {
                cells.get(&(row % (*rows).max(1), index % (*size).max(1))).copied().unwrap_or(0)
            }
            Some(ObjectState::Seq { cells, size }) => {
                cells.get(&(index % (*size).max(1))).copied().unwrap_or(0)
            }
            _ => 0,
        }
    }

    /// Write an array/sequence cell.
    pub fn array_write(&mut self, name: &str, row: u32, index: u32, value: i64) {
        if let Some(slot) = self.slot_of(name) {
            self.array_write_slot(slot, row, index, value);
        }
    }

    /// [`ObjectStore::array_write`] by slot index.
    pub fn array_write_slot(&mut self, slot: usize, row: u32, index: u32, value: i64) {
        match self.slots.get_mut(slot).and_then(Option::as_mut) {
            Some(ObjectState::Array { cells, rows, size }) => {
                cells.insert((row % (*rows).max(1), index % (*size).max(1)), value);
            }
            Some(ObjectState::Seq { cells, size }) => {
                cells.insert(index % (*size).max(1), value);
            }
            _ => {}
        }
    }

    /// Increment an array/sequence cell and return the post-increment value.
    pub fn array_add(&mut self, name: &str, row: u32, index: u32, delta: i64) -> i64 {
        match self.slot_of(name) {
            Some(slot) => self.array_add_slot(slot, row, index, delta),
            None => delta,
        }
    }

    /// [`ObjectStore::array_add`] by slot index.
    pub fn array_add_slot(&mut self, slot: usize, row: u32, index: u32, delta: i64) -> i64 {
        let new = self.array_read_slot(slot, row, index) + delta;
        self.array_write_slot(slot, row, index, new);
        new
    }

    /// Hash a key with a declared hash object.
    pub fn hash(&self, name: &str, keys: &[Value]) -> i64 {
        hash_with_seed(hash_seed(name), self.hash_modulus(name), keys)
    }

    /// Count-min / Bloom update keyed by an arbitrary value; returns the new
    /// minimum estimate (CMS) or 1 (Bloom).
    pub fn sketch_count(&mut self, name: &str, key: &Value, delta: i64) -> i64 {
        match self.slot_of(name) {
            Some(slot) => self.sketch_count_slot(slot, key, delta),
            None => 0,
        }
    }

    /// [`ObjectStore::sketch_count`] by slot index.
    pub fn sketch_count_slot(&mut self, slot: usize, key: &Value, delta: i64) -> i64 {
        let k = value_key(key);
        if let Some(ObjectState::Sketch { kind, rows, cols, counters }) =
            self.slots.get_mut(slot).and_then(Option::as_mut)
        {
            let mut min = i64::MAX;
            for row in 0..*rows {
                let col = (mix(u64::from(row) + 1, k) % u64::from(*cols)) as usize;
                let cell = &mut counters[row as usize][col];
                match kind {
                    SketchKind::CountMin => *cell += delta,
                    SketchKind::Bloom => *cell = 1,
                }
                min = min.min(*cell);
            }
            min
        } else {
            0
        }
    }

    /// Count-min estimate / Bloom membership for a key.
    pub fn sketch_estimate(&self, name: &str, key: &Value) -> i64 {
        self.slot_of(name).map(|slot| self.sketch_estimate_slot(slot, key)).unwrap_or(0)
    }

    /// [`ObjectStore::sketch_estimate`] by slot index.
    pub fn sketch_estimate_slot(&self, slot: usize, key: &Value) -> i64 {
        let k = value_key(key);
        if let Some(ObjectState::Sketch { rows, cols, counters, .. }) =
            self.slots.get(slot).and_then(Option::as_ref)
        {
            let mut min = i64::MAX;
            for row in 0..*rows {
                let col = (mix(u64::from(row) + 1, k) % u64::from(*cols)) as usize;
                min = min.min(counters[row as usize][col]);
            }
            if min == i64::MAX {
                0
            } else {
                min
            }
        } else {
            0
        }
    }

    /// Look a key up in a table; `Value::None` on miss.
    pub fn table_get(&self, name: &str, key: &[Value]) -> Value {
        self.slot_of(name).map(|slot| self.table_get_slot(slot, key)).unwrap_or(Value::None)
    }

    /// [`ObjectStore::table_get`] by slot index.
    pub fn table_get_slot(&self, slot: usize, key: &[Value]) -> Value {
        match self.slots.get(slot).and_then(Option::as_ref) {
            Some(ObjectState::Table { entries }) => entries
                .get(&table_key(key))
                .map(|v| v.first().cloned().unwrap_or(Value::None))
                .unwrap_or(Value::None),
            _ => Value::None,
        }
    }

    /// Insert / overwrite a table entry (used both by data-plane writes on
    /// devices that allow them and by the emulated control plane).
    pub fn table_write(&mut self, name: &str, key: &[Value], value: Vec<Value>) {
        if let Some(slot) = self.slot_of(name) {
            self.table_write_slot(slot, key, value);
        }
    }

    /// [`ObjectStore::table_write`] by slot index.
    pub fn table_write_slot(&mut self, slot: usize, key: &[Value], value: Vec<Value>) {
        if let Some(ObjectState::Table { entries }) =
            self.slots.get_mut(slot).and_then(Option::as_mut)
        {
            entries.insert(table_key(key), value);
        }
    }

    /// Remove one table entry by slot index (the VM's compiled table delete).
    pub fn table_remove_slot(&mut self, slot: usize, key: &[Value]) {
        if let Some(ObjectState::Table { entries }) =
            self.slots.get_mut(slot).and_then(Option::as_mut)
        {
            entries.remove(&table_key(key));
        }
    }

    /// Delete a table entry or reset an array cell.
    pub fn delete(&mut self, name: &str, key: &[Value]) {
        match self.state_mut(name) {
            Some(ObjectState::Table { entries }) => {
                entries.remove(&table_key(key));
            }
            Some(ObjectState::Array { .. }) | Some(ObjectState::Seq { .. }) => {
                let row = key.first().and_then(Value::as_int).unwrap_or(0) as u32;
                let idx = key.get(1).and_then(Value::as_int).unwrap_or(0) as u32;
                if key.len() >= 2 {
                    self.array_write(name, row, idx, 0);
                } else {
                    self.array_write(name, 0, row, 0);
                }
            }
            _ => {}
        }
    }

    /// Remove an object and its contents entirely (tenant teardown).  Returns
    /// whether the object existed.  The slot is tombstoned, never reused, so
    /// surviving objects keep their compiled slot indices.
    pub fn remove_object(&mut self, name: &str) -> bool {
        match self.names.remove(name) {
            Some(slot) => {
                self.slots[slot] = None;
                true
            }
            None => false,
        }
    }

    /// Merge another store into this one.  Objects only present in `other`
    /// are copied over; objects present in both keep this store's contents.
    /// Tenant isolation renames every object with the owner's prefix, so
    /// stores partitioned by tenant have disjoint object names and this union
    /// reconstructs exactly the state a single shared store would hold.
    pub fn merge_from(&mut self, other: &ObjectStore) {
        for (name, &slot) in &other.names {
            let Some(state) = &other.slots[slot] else { continue };
            if !self.names.contains_key(name) {
                self.names.insert(name.clone(), self.slots.len());
                self.slots.push(Some(state.clone()));
            }
        }
    }

    /// Merge another *shard's* store into this one, distinguishing
    /// tenant-partitioned from flow-partitioned objects.
    ///
    /// Objects for which `flow_partitioned` returns `false` behave like
    /// [`merge_from`](ObjectStore::merge_from): tenant isolation makes them
    /// disjoint across shards, so first-copy-wins reconstructs the shared
    /// store.  Objects reported as flow-partitioned exist on *every* shard
    /// (the runtime replicates a flow-sharded tenant's program) and hold a
    /// flow partition of the same logical state, so they are recombined
    /// structurally:
    ///
    /// * `Array`/`Seq` cells and Count-Min rows **sum** — each packet
    ///   incremented exactly one partition, so the sums equal the counters a
    ///   single shared store would hold;
    /// * Bloom rows **OR** (saturate at 1);
    /// * `Table` entries **union**, keeping this store's value on a key
    ///   collision.
    ///
    /// These rules are exact precisely when every flow-partitioned mutation
    /// is commutative (counter adds, idempotent Bloom sets) or replicated
    /// identically by the control plane — the contract the runtime's
    /// state-profile analysis enforces before flow-sharding a tenant.
    /// Register/table *overwrites* have no order-free merge and must not be
    /// flow-partitioned.
    pub fn merge_shard_from(
        &mut self,
        other: &ObjectStore,
        flow_partitioned: impl Fn(&str) -> bool,
    ) {
        for (name, &slot) in &other.names {
            let Some(state) = &other.slots[slot] else { continue };
            match self.names.get(name) {
                None => {
                    self.names.insert(name.clone(), self.slots.len());
                    self.slots.push(Some(state.clone()));
                }
                Some(&mine) if flow_partitioned(name) => {
                    if let Some(mine) = self.slots[mine].as_mut() {
                        merge_flow_partition(mine, state);
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Clone the objects selected by `keep` (declarations *and* contents)
    /// into a fresh store.  Tenant isolation renames every object with its
    /// owner's prefix, so a per-tenant predicate extracts exactly one
    /// tenant's state — the extraction half of a live reshard.
    pub fn clone_subset(&self, keep: impl Fn(&str) -> bool) -> ObjectStore {
        let mut subset = ObjectStore::new();
        for (name, &slot) in &self.names {
            let Some(state) = &self.slots[slot] else { continue };
            if keep(name) {
                subset.names.insert(name.clone(), subset.slots.len());
                subset.slots.push(Some(state.clone()));
            }
        }
        subset
    }

    /// Deduct `copies` replicas of a baseline store from this one, for the
    /// *additive* object kinds only (`Array`/`Seq` cells and Count-Min
    /// counters).  Bloom rows, tables and stateless objects are untouched —
    /// they are idempotent under replication.
    ///
    /// This is the reconciliation half of a live reshard to `ByFlow`: the
    /// runtime seeds the tenant's full extracted state onto every shard (so
    /// flow-keyed *reads* still see pre-reshard history), which means the
    /// final additive cross-shard merge counts that baseline once per shard.
    /// Subtracting `shards - 1` copies restores the exact state an unsharded
    /// run would hold: each cell's owner shard accumulated `baseline + its
    /// deltas`, the other replicas held `baseline` untouched, and
    /// `sum - (copies)·baseline = baseline + Σdeltas`.
    pub fn subtract_replica_baseline(&mut self, baseline: &ObjectStore, copies: u64) {
        if copies == 0 {
            return;
        }
        let copies = copies as i64;
        for (name, &slot) in &baseline.names {
            let Some(base) = &baseline.slots[slot] else { continue };
            let Some(mine) = self.state_mut(name) else { continue };
            match (mine, base) {
                (ObjectState::Array { cells: a, .. }, ObjectState::Array { cells: b, .. }) => {
                    for (key, value) in b {
                        *a.entry(*key).or_insert(0) -= copies * value;
                    }
                }
                (ObjectState::Seq { cells: a, .. }, ObjectState::Seq { cells: b, .. }) => {
                    for (key, value) in b {
                        *a.entry(*key).or_insert(0) -= copies * value;
                    }
                }
                (
                    ObjectState::Sketch { kind: SketchKind::CountMin, counters: a, .. },
                    ObjectState::Sketch { kind: SketchKind::CountMin, counters: b, .. },
                ) => {
                    for (row_a, row_b) in a.iter_mut().zip(b) {
                        for (cell_a, cell_b) in row_a.iter_mut().zip(row_b) {
                            *cell_a -= copies * cell_b;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// A deterministic digest of the full store contents (object names,
    /// shapes, and every live cell/entry/counter).  Two stores with equal
    /// contents produce equal fingerprints in any process — the walk follows
    /// the name map's lexicographic order, so the digest is independent of
    /// slot layout.  Used by the runtime's shard-count invariance tests and
    /// the interpreter/VM differential oracle.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for (name, &slot) in &self.names {
            let Some(state) = &self.slots[slot] else { continue };
            h.write_str(name);
            match state {
                ObjectState::Array { rows, size, cells } => {
                    h.write_u64(1);
                    h.write_u64(u64::from(*rows));
                    h.write_u64(u64::from(*size));
                    for ((r, c), v) in cells {
                        h.write_u64(u64::from(*r));
                        h.write_u64(u64::from(*c));
                        h.write_u64(*v as u64);
                    }
                }
                ObjectState::Seq { size, cells } => {
                    h.write_u64(2);
                    h.write_u64(u64::from(*size));
                    for (c, v) in cells {
                        h.write_u64(u64::from(*c));
                        h.write_u64(*v as u64);
                    }
                }
                ObjectState::Sketch { kind, rows, cols, counters } => {
                    h.write_u64(3);
                    h.write_u64(match kind {
                        SketchKind::CountMin => 0,
                        SketchKind::Bloom => 1,
                    });
                    h.write_u64(u64::from(*rows));
                    h.write_u64(u64::from(*cols));
                    for row in counters {
                        for v in row {
                            h.write_u64(*v as u64);
                        }
                    }
                }
                ObjectState::Table { entries } => {
                    h.write_u64(4);
                    for (k, values) in entries {
                        h.write_u64(*k);
                        for v in values {
                            h.write_u64(value_key(v));
                        }
                    }
                }
                ObjectState::Hash { modulus } => {
                    h.write_u64(5);
                    h.write_u64(modulus.map(u64::from).unwrap_or(u64::MAX));
                }
                ObjectState::Crypto => h.write_u64(6),
            }
        }
        h.finish()
    }

    /// Clear an object entirely.
    pub fn clear(&mut self, name: &str) {
        if let Some(slot) = self.slot_of(name) {
            self.clear_slot(slot);
        }
    }

    /// [`ObjectStore::clear`] by slot index.
    pub fn clear_slot(&mut self, slot: usize) {
        if let Some(state) = self.slots.get_mut(slot).and_then(Option::as_mut) {
            match state {
                ObjectState::Array { cells, .. } => cells.clear(),
                ObjectState::Seq { cells, .. } => cells.clear(),
                ObjectState::Sketch { counters, .. } => {
                    for row in counters {
                        row.iter_mut().for_each(|c| *c = 0);
                    }
                }
                ObjectState::Table { entries } => entries.clear(),
                _ => {}
            }
        }
    }
}

/// Recombine one flow partition of an object into the accumulated state;
/// see [`ObjectStore::merge_shard_from`] for the per-kind rules.  Shape
/// mismatches (which cannot arise from replicas of one declaration) keep the
/// accumulated state untouched.
fn merge_flow_partition(mine: &mut ObjectState, other: &ObjectState) {
    match (mine, other) {
        (ObjectState::Array { cells: a, .. }, ObjectState::Array { cells: b, .. }) => {
            for (key, value) in b {
                *a.entry(*key).or_insert(0) += value;
            }
        }
        (ObjectState::Seq { cells: a, .. }, ObjectState::Seq { cells: b, .. }) => {
            for (key, value) in b {
                *a.entry(*key).or_insert(0) += value;
            }
        }
        (
            ObjectState::Sketch { kind, counters: a, .. },
            ObjectState::Sketch { counters: b, .. },
        ) => {
            for (row_a, row_b) in a.iter_mut().zip(b) {
                for (cell_a, cell_b) in row_a.iter_mut().zip(row_b) {
                    match kind {
                        SketchKind::CountMin => *cell_a += cell_b,
                        SketchKind::Bloom => *cell_a = (*cell_a).max(*cell_b),
                    }
                }
            }
        }
        (ObjectState::Table { entries: a }, ObjectState::Table { entries: b }) => {
            for (key, value) in b {
                a.entry(*key).or_insert_with(|| value.clone());
            }
        }
        _ => {}
    }
}

/// Re-exported from `clickinc-ir`, where the hasher now lives so lower
/// layers (e.g. placement-plan fingerprints) can share the exact digest the
/// store fingerprints and the runtime's tenant→shard hash use.
pub use clickinc_ir::Fnv;

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(name: &str, kind: ObjectKind) -> ObjectStore {
        let mut s = ObjectStore::new();
        s.declare(&ObjectDecl::new(name, kind));
        s
    }

    #[test]
    fn array_read_write_add_and_wraparound() {
        let mut s = store_with("a", ObjectKind::Array { rows: 2, size: 8, width: 32 });
        assert_eq!(s.array_read("a", 0, 3), 0);
        s.array_write("a", 0, 3, 42);
        assert_eq!(s.array_read("a", 0, 3), 42);
        assert_eq!(s.array_read("a", 1, 3), 0, "rows are independent");
        assert_eq!(s.array_add("a", 0, 3, 8), 50);
        // indices wrap modulo the declared size
        assert_eq!(s.array_read("a", 0, 11), 50);
        s.clear("a");
        assert_eq!(s.array_read("a", 0, 3), 0);
    }

    #[test]
    fn table_hit_miss_write_delete() {
        let mut s = store_with(
            "t",
            ObjectKind::Table {
                match_kind: clickinc_ir::MatchKind::Exact,
                key_width: 32,
                value_width: 32,
                depth: 16,
                stateful: false,
            },
        );
        let key = [Value::Int(7)];
        assert_eq!(s.table_get("t", &key), Value::None);
        s.table_write("t", &key, vec![Value::Int(99)]);
        assert_eq!(s.table_get("t", &key), Value::Int(99));
        assert_eq!(s.table_get("t", &[Value::Int(8)]), Value::None);
        s.delete("t", &key);
        assert_eq!(s.table_get("t", &key), Value::None);
    }

    #[test]
    fn hash_is_deterministic_and_respects_modulus() {
        let s = store_with(
            "h",
            ObjectKind::Hash { algo: clickinc_ir::HashAlgo::Crc16, modulus: Some(100) },
        );
        let a = s.hash("h", &[Value::Int(5)]);
        let b = s.hash("h", &[Value::Int(5)]);
        assert_eq!(a, b);
        assert!((0..100).contains(&a));
        assert_ne!(s.hash("h", &[Value::Int(5)]), s.hash("h", &[Value::Int(6)]));
        // the split seed/modulus form the VM compiles against is identical
        assert_eq!(
            hash_with_seed(hash_seed("h"), s.hash_modulus("h"), &[Value::Int(5)]),
            s.hash("h", &[Value::Int(5)])
        );
    }

    #[test]
    fn cms_counts_and_bloom_membership() {
        let mut s = store_with(
            "cms",
            ObjectKind::Sketch { kind: SketchKind::CountMin, rows: 3, cols: 128, width: 32 },
        );
        for _ in 0..5 {
            s.sketch_count("cms", &Value::Int(7), 1);
        }
        assert!(s.sketch_estimate("cms", &Value::Int(7)) >= 5);
        assert_eq!(s.sketch_estimate("cms", &Value::Int(12345)), 0);

        let mut bf = store_with(
            "bf",
            ObjectKind::Sketch { kind: SketchKind::Bloom, rows: 2, cols: 256, width: 1 },
        );
        bf.sketch_count("bf", &Value::Bytes(vec![1, 2, 3]), 1);
        assert!(bf.sketch_estimate("bf", &Value::Bytes(vec![1, 2, 3])) > 0);
    }

    #[test]
    fn merge_and_fingerprint_reconstruct_a_shared_store() {
        let array = ObjectKind::Array { rows: 1, size: 16, width: 32 };
        // two tenant-partitioned stores with disjoint object names
        let mut a = store_with("t1_a", array.clone());
        a.array_write("t1_a", 0, 3, 7);
        let mut b = store_with("t2_a", array.clone());
        b.array_write("t2_a", 0, 5, 9);
        // the shared store both tenants would have written into
        let mut shared = ObjectStore::new();
        shared.declare(&ObjectDecl::new("t1_a", array.clone()));
        shared.declare(&ObjectDecl::new("t2_a", array));
        shared.array_write("t1_a", 0, 3, 7);
        shared.array_write("t2_a", 0, 5, 9);

        let mut merged = ObjectStore::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.fingerprint(), shared.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // fingerprints react to content changes
        let before = merged.fingerprint();
        merged.array_write("t1_a", 0, 3, 8);
        assert_ne!(merged.fingerprint(), before);
    }

    #[test]
    fn shard_merge_recombines_flow_partitions_and_keeps_tenant_partitions() {
        let array = ObjectKind::Array { rows: 1, size: 16, width: 32 };
        let cms = ObjectKind::Sketch { kind: SketchKind::CountMin, rows: 2, cols: 8, width: 32 };
        let bloom = ObjectKind::Sketch { kind: SketchKind::Bloom, rows: 1, cols: 8, width: 1 };
        let table = ObjectKind::Table {
            match_kind: clickinc_ir::MatchKind::Exact,
            key_width: 32,
            value_width: 32,
            depth: 8,
            stateful: false,
        };
        // two shard partitions of the same flow-sharded tenant's objects,
        // plus a tenant-partitioned object present on one shard only
        let mut shard0 = ObjectStore::new();
        let mut shard1 = ObjectStore::new();
        for s in [&mut shard0, &mut shard1] {
            s.declare(&ObjectDecl::new("flow_hits", array.clone()));
            s.declare(&ObjectDecl::new("flow_cms", cms.clone()));
            s.declare(&ObjectDecl::new("flow_bf", bloom.clone()));
            s.declare(&ObjectDecl::new("flow_cache", table.clone()));
            // the control-plane replicated the same cache entry everywhere
            s.table_write("flow_cache", &[Value::Int(1)], vec![Value::Int(10)]);
        }
        shard0.declare(&ObjectDecl::new("solo_a", array.clone()));
        shard0.array_write("solo_a", 0, 0, 9);
        // disjoint flow partitions, plus one colliding counter cell
        shard0.array_add("flow_hits", 0, 1, 2);
        shard1.array_add("flow_hits", 0, 1, 3);
        shard1.array_add("flow_hits", 0, 5, 7);
        shard0.sketch_count("flow_cms", &Value::Int(1), 4);
        shard1.sketch_count("flow_cms", &Value::Int(1), 6);
        shard0.sketch_count("flow_bf", &Value::Int(2), 1);
        shard1.sketch_count("flow_bf", &Value::Int(2), 1);

        // the single shared store every packet would have hit unsharded
        let mut shared = ObjectStore::new();
        shared.declare(&ObjectDecl::new("flow_hits", array.clone()));
        shared.declare(&ObjectDecl::new("flow_cms", cms));
        shared.declare(&ObjectDecl::new("flow_bf", bloom));
        shared.declare(&ObjectDecl::new("flow_cache", table));
        shared.table_write("flow_cache", &[Value::Int(1)], vec![Value::Int(10)]);
        shared.declare(&ObjectDecl::new("solo_a", array));
        shared.array_write("solo_a", 0, 0, 9);
        shared.array_add("flow_hits", 0, 1, 5);
        shared.array_add("flow_hits", 0, 5, 7);
        shared.sketch_count("flow_cms", &Value::Int(1), 10);
        shared.sketch_count("flow_bf", &Value::Int(2), 1);

        let mut merged = ObjectStore::new();
        let is_flow = |name: &str| name.starts_with("flow_");
        merged.merge_shard_from(&shard0, is_flow);
        merged.merge_shard_from(&shard1, is_flow);
        assert_eq!(merged.fingerprint(), shared.fingerprint());
    }

    #[test]
    fn replicated_baseline_merge_reconciles_to_the_unsharded_store() {
        // A tenant accumulates state unsharded, is live-resharded across two
        // shards (each seeded with the full baseline), keeps accumulating,
        // and the final additive merge minus one baseline copy must equal
        // the store an unsharded run would hold.
        let array = ObjectKind::Array { rows: 1, size: 16, width: 32 };
        let cms = ObjectKind::Sketch { kind: SketchKind::CountMin, rows: 2, cols: 8, width: 32 };
        let bloom = ObjectKind::Sketch { kind: SketchKind::Bloom, rows: 1, cols: 8, width: 1 };
        let mut baseline = ObjectStore::new();
        baseline.declare(&ObjectDecl::new("t_hits", array.clone()));
        baseline.declare(&ObjectDecl::new("t_cms", cms.clone()));
        baseline.declare(&ObjectDecl::new("t_bf", bloom.clone()));
        baseline.array_add("t_hits", 0, 1, 5);
        baseline.sketch_count("t_cms", &Value::Int(1), 3);
        baseline.sketch_count("t_bf", &Value::Int(1), 1);

        // each shard replica starts from the full baseline (clone_subset of
        // everything), then accumulates its own flow partition
        let mut shard0 = baseline.clone_subset(|_| true);
        let mut shard1 = baseline.clone_subset(|_| true);
        shard0.array_add("t_hits", 0, 1, 2); // same cell as the baseline
        shard1.array_add("t_hits", 0, 7, 4); // fresh cell
        shard0.sketch_count("t_cms", &Value::Int(1), 1);
        shard1.sketch_count("t_cms", &Value::Int(2), 6);
        shard1.sketch_count("t_bf", &Value::Int(2), 1);

        // the unsharded reference: baseline plus both shards' deltas once
        let mut shared = baseline.clone_subset(|_| true);
        shared.array_add("t_hits", 0, 1, 2);
        shared.array_add("t_hits", 0, 7, 4);
        shared.sketch_count("t_cms", &Value::Int(1), 1);
        shared.sketch_count("t_cms", &Value::Int(2), 6);
        shared.sketch_count("t_bf", &Value::Int(2), 1);

        let mut merged = ObjectStore::new();
        merged.merge_shard_from(&shard0, |_| true);
        merged.merge_shard_from(&shard1, |_| true);
        merged.subtract_replica_baseline(&baseline, 1); // 2 shards → 1 extra copy
        assert_eq!(merged.fingerprint(), shared.fingerprint());
        assert_eq!(merged.array_read("t_hits", 0, 1), 7);
        assert_eq!(merged.array_read("t_hits", 0, 7), 4);
        // Bloom rows OR, so replication needs no deduction
        assert!(merged.sketch_estimate("t_bf", &Value::Int(1)) > 0);
        assert!(merged.sketch_estimate("t_bf", &Value::Int(2)) > 0);
    }

    #[test]
    fn clone_subset_extracts_declarations_and_contents() {
        let array = ObjectKind::Array { rows: 1, size: 8, width: 32 };
        let mut s = ObjectStore::new();
        s.declare(&ObjectDecl::new("t1_a", array.clone()));
        s.declare(&ObjectDecl::new("t2_a", array.clone()));
        s.array_write("t1_a", 0, 2, 9);
        s.array_write("t2_a", 0, 2, 4);
        let subset = s.clone_subset(|name| name.starts_with("t1_"));
        assert!(subset.contains("t1_a"));
        assert!(!subset.contains("t2_a"));
        assert_eq!(subset.array_read("t1_a", 0, 2), 9);
        // equal to a store that only ever held t1's object
        let mut reference = ObjectStore::new();
        reference.declare(&ObjectDecl::new("t1_a", array));
        reference.array_write("t1_a", 0, 2, 9);
        assert_eq!(subset.fingerprint(), reference.fingerprint());
    }

    #[test]
    fn remove_object_drops_state() {
        let mut s = store_with("a", ObjectKind::Array { rows: 1, size: 4, width: 32 });
        s.array_write("a", 0, 1, 5);
        assert!(s.remove_object("a"));
        assert!(!s.remove_object("a"));
        assert!(!s.contains("a"));
        assert_eq!(s.array_read("a", 0, 1), 0);
    }

    #[test]
    fn redeclaration_preserves_contents() {
        let decl = ObjectDecl::new("a", ObjectKind::Array { rows: 1, size: 4, width: 32 });
        let mut s = ObjectStore::new();
        s.declare(&decl);
        s.array_write("a", 0, 1, 5);
        s.declare(&decl);
        assert_eq!(s.array_read("a", 0, 1), 5);
        assert!(s.contains("a"));
        assert!(!s.contains("b"));
    }

    #[test]
    fn slot_indices_survive_removal_of_other_objects() {
        let array = ObjectKind::Array { rows: 1, size: 8, width: 32 };
        let mut s = ObjectStore::new();
        s.declare(&ObjectDecl::new("a", array.clone()));
        s.declare(&ObjectDecl::new("b", array.clone()));
        let slot_b = s.slot_of("b").unwrap();
        s.array_write_slot(slot_b, 0, 2, 11);
        s.remove_object("a");
        assert_eq!(s.slot_of("b"), Some(slot_b), "tombstoning `a` must not move `b`");
        assert_eq!(s.array_read_slot(slot_b, 0, 2), 11);
        assert_eq!(s.slot_of("a"), None);
        // fingerprint equals a store that never saw `a` at all
        let mut fresh = ObjectStore::new();
        fresh.declare(&ObjectDecl::new("b", array));
        fresh.array_write("b", 0, 2, 11);
        assert_eq!(s.fingerprint(), fresh.fingerprint());
    }
}
