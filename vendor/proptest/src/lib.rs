//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset the workspace uses: the `proptest!` macro over
//! `pattern in strategy` arguments, half-open range strategies, `any::<T>()`,
//! `collection::vec`, and the `prop_assert!`/`prop_assert_eq!` macros.
//! Generation is deterministic per test name. There is **no shrinking**: a
//! failing case panics with the generated inputs' debug representation.

use std::marker::PhantomData;
use std::ops::Range;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful in the stand-in.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test name keeps runs reproducible
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use super::*;
    use crate::test_runner::TestRng;

    /// A value generator. Unlike real proptest there is no value tree and no
    /// shrinking; a strategy simply produces values.
    pub trait Strategy {
        type Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + i128::from(rng.next_u64() % span)) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Uniform strategy over every value of `T`.
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Number of elements a [`vec`] strategy generates: either exact or drawn
    /// from a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }
}

/// Fails the current proptest case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Fails the current proptest case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)*), __l, __r));
        }
    }};
}

/// Fails the current proptest case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __l, __r
            ));
        }
    }};
}

/// The property-test entry point. Each contained function runs
/// `config.cases` times with fresh strategy-generated inputs; the body may
/// use `prop_assert!`-family macros or plain panics.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __result: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::gen_value(
                                &($strategy), &mut __rng);
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __config.cases, __msg);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(::std::default::Default::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(
            exact in crate::collection::vec(any::<u8>(), 7),
            ranged in crate::collection::vec(0u32..50, 1..200),
        ) {
            prop_assert_eq!(exact.len(), 7);
            prop_assert!((1..200).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|v| *v < 50));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0u8..10) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        inner();
    }
}
