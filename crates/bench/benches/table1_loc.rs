//! Table 1 — lines of code: ClickINC vs the device-level program our backend
//! generates, with the paper's Lyra/P4all/P4-16 numbers for reference.

use clickinc_backend::generate;
use clickinc_device::DeviceKind;
use clickinc_frontend::compile_source;
use clickinc_lang::templates::{
    dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams, MlAggParams,
};

fn main() {
    println!("== Table 1: Lines of Code (ClickINC vs device-level programs) ==");
    println!(
        "{:<8} {:>10} {:>14} {:>22} {:>22}",
        "App", "ClickINC", "Generated P4", "Paper ClickINC/P4-16", "Paper Lyra/P4all"
    );
    let apps = [
        ("KVS", kvs_template("kvs", KvsParams::default()).source, "16/571", "125/202"),
        ("MLAgg", mlagg_template("mlagg", MlAggParams::default()).source, "56/1564", "232/233"),
        ("DQAcc", dqacc_template("dqacc", DqAccParams::default()).source, "13/403", "243/138"),
    ];
    for (name, source, paper_ours, paper_theirs) in apps {
        let clickinc_loc = clickinc_lang::lines_of_code(&source);
        let ir = compile_source(name, &source).expect("template compiles");
        let p4 = generate(DeviceKind::Tofino, &ir);
        println!(
            "{:<8} {:>10} {:>14} {:>22} {:>22}",
            name,
            clickinc_loc,
            p4.lines_of_code(),
            paper_ours,
            paper_theirs
        );
    }
    println!("(Lyra and P4all LoC are quoted from the paper; their compilers are not public.)");
}
