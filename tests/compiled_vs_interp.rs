//! Differential validation of the compiled execution tier.
//!
//! The register VM is the default data-plane execution path; the interpreter
//! stays on as the reference oracle.  This suite pins the equivalence the
//! rest of the system relies on:
//!
//! 1. **fig13 programs** — all four provider templates (KVS, MLAgg, CMS,
//!    DQAcc), isolated and optimized exactly as the controller deploys them,
//!    co-resident on one device, run over representative traces through both
//!    tiers: per-packet outcomes, rewritten packets, store fingerprints and
//!    telemetry counters must be bit-identical.
//! 2. **Golden compiled streams** — the optimizer+compiler output for each
//!    fig13 program is pinned in `tests/golden/<name>.vm`; any codegen drift
//!    diffs here.  Regenerate with `UPDATE_GOLDEN=1 cargo test`.
//! 3. **Random programs** — proptest: generated verified counter/table
//!    programs over sampled packet traces agree across tiers.

use clickinc::lang::templates::{
    count_min_sketch, dqacc_template, kvs_template, mlagg_template, DqAccParams, KvsParams,
    MlAggParams,
};
use clickinc::synthesis::isolate_user_program;
use clickinc_device::DeviceModel;
use clickinc_emulator::packet::{gradient_packet, kvs_request};
use clickinc_emulator::{DevicePlane, ExecMode, Packet};
use clickinc_frontend::compile_source;
use clickinc_ir::{
    CmpOp, DiagnosticSet, IrProgram, MatchKind, Operand, Optimizer, PassContext, PassManager,
    Predicate, ProgramBuilder, Value, ValueType,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Compile, isolate and optimize a tenant program exactly as the controller
/// does at deploy time (`Controller::solve_prepared`).
fn prepare(user: &str, numeric_id: i64, source: &str) -> IrProgram {
    let ir = compile_source(user, source).expect("template compiles");
    let isolated = isolate_user_program(&ir, user, numeric_id);
    let mut diags = DiagnosticSet::new();
    let optimized = Optimizer::with_default_passes().optimize(user, true, &isolated, &mut diags);
    assert!(!diags.has_errors(), "{user} must optimize clean:\n{diags}");
    optimized
}

/// The four fig13 provider templates with deploy-order numeric ids.
fn fig13_programs() -> Vec<(&'static str, i64, IrProgram)> {
    let mlagg = MlAggParams { num_aggregators: 64, num_workers: 4, dims: 8, is_float: false };
    vec![
        (
            "kvs_srv",
            1,
            prepare(
                "kvs_srv",
                1,
                &kvs_template("kvs_srv", KvsParams { cache_depth: 64, ..Default::default() })
                    .source,
            ),
        ),
        ("mlagg", 2, prepare("mlagg", 2, &mlagg_template("mlagg", mlagg).source)),
        ("cms", 3, prepare("cms", 3, &count_min_sketch("cms", 3, 128).source)),
        (
            "dqacc",
            4,
            prepare(
                "dqacc",
                4,
                &dqacc_template("dqacc", DqAccParams { depth: 32, ways: 4 }).source,
            ),
        ),
    ]
}

/// A plane per tier with the same programs installed.
fn plane_pair(programs: &[IrProgram]) -> (DevicePlane, DevicePlane) {
    let mut compiled = DevicePlane::new("SW0", DeviceModel::tofino());
    let mut interp = DevicePlane::new("SW0", DeviceModel::tofino());
    compiled.set_exec_mode(ExecMode::Compiled);
    interp.set_exec_mode(ExecMode::Interpreted);
    for p in programs {
        compiled.install(p.clone());
        interp.install(p.clone());
    }
    (compiled, interp)
}

/// Drive the same trace through both tiers, asserting bit-identical behavior
/// packet by packet and identical end state.
fn assert_tiers_agree(compiled: &mut DevicePlane, interp: &mut DevicePlane, trace: Vec<Packet>) {
    for (i, pkt) in trace.into_iter().enumerate() {
        let mut a = pkt.clone();
        let mut b = pkt;
        let oa = compiled.process(&mut a);
        let ob = interp.process(&mut b);
        assert_eq!(oa, ob, "outcome diverges at packet {i}");
        assert_eq!(a, b, "rewritten packet diverges at packet {i}");
        assert_eq!(
            compiled.instructions_executed, interp.instructions_executed,
            "telemetry diverges at packet {i}"
        );
    }
    assert_eq!(
        compiled.store().fingerprint(),
        interp.store().fingerprint(),
        "final stores diverge"
    );
    assert_eq!(compiled.packets_processed, interp.packets_processed);
}

/// The gradient trace: four workers per round, duplicate contributions, plus
/// ACKs that retire completed aggregation slots.
fn mlagg_trace(user: i64) -> Vec<Packet> {
    let mut trace = Vec::new();
    for seq in 0..4i64 {
        for worker in 0..4usize {
            let values: Vec<i64> = (0..8).map(|d| seq * 100 + worker as i64 * 10 + d).collect();
            trace.push(gradient_packet("w", "ps", user, seq, worker, 8, &values));
            if worker == 1 {
                // duplicate contribution: must be filtered by the bitmap
                trace.push(gradient_packet("w", "ps", user, seq, worker, 8, &values));
            }
        }
        // ACK retires the slot
        let mut fields = BTreeMap::new();
        fields.insert("op".to_string(), Value::Int(1));
        fields.insert("seq".to_string(), Value::Int(seq));
        trace.push(Packet::new("ps", "w", user, fields));
    }
    trace
}

#[test]
fn fig13_programs_agree_across_tiers_when_co_resident() {
    let programs = fig13_programs();
    let (mut compiled, mut interp) =
        plane_pair(&programs.iter().map(|(_, _, p)| p.clone()).collect::<Vec<_>>());
    // pre-populate the KVS cache so both hit and miss paths run
    for plane in [&mut compiled, &mut interp] {
        plane.store_mut().table_write("kvs_srv_cache", &[Value::Int(7)], vec![Value::Int(77)]);
    }
    let mut trace = Vec::new();
    // kvs tenant (id 1): hits, misses with repeats (drives the CMS over its
    // threshold), an UPDATE and an unknown opcode
    for key in [7i64, 3, 7, 5, 3, 3, 3, 9, 7, 3] {
        trace.push(kvs_request("c", "s", 1, key));
    }
    let mut fields = BTreeMap::new();
    fields.insert("op".to_string(), Value::Int(3));
    fields.insert("key".to_string(), Value::Int(5));
    fields.insert("vals".to_string(), Value::Int(55));
    trace.push(Packet::new("c", "s", 1, fields));
    let mut fields = BTreeMap::new();
    fields.insert("op".to_string(), Value::Int(9));
    trace.push(Packet::new("c", "s", 1, fields));
    // mlagg tenant (id 2)
    trace.extend(mlagg_trace(2));
    // cms tenant (id 3): skewed key stream
    for key in [1i64, 1, 2, 1, 3, 1, 2, 5, 8, 1, 1, 2] {
        let mut fields = BTreeMap::new();
        fields.insert("key".to_string(), Value::Int(key));
        trace.push(Packet::new("c", "s", 3, fields));
    }
    // dqacc tenant (id 4): duplicate-heavy value stream
    for value in [10i64, 11, 10, 12, 13, 11, 14, 10, 15, 16, 12, 17] {
        let mut fields = BTreeMap::new();
        fields.insert("value".to_string(), Value::Int(value));
        trace.push(Packet::new("c", "s", 4, fields));
    }
    // a packet from a tenant nobody installed: every precondition gates it off
    trace.push(kvs_request("c", "s", 99, 7));
    assert_tiers_agree(&mut compiled, &mut interp, trace);
}

#[test]
fn fig13_compiled_streams_match_their_golden_snapshots() {
    let golden_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for (name, _, program) in fig13_programs() {
        let mut plane = DevicePlane::new("SW0", DeviceModel::tofino());
        plane.set_exec_mode(ExecMode::Compiled);
        plane.install(program);
        let dump = plane.compiled_image().expect("installed programs compile").dump();
        let path = golden_dir.join(format!("{name}.vm"));
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::create_dir_all(&golden_dir).expect("golden dir");
            std::fs::write(&path, &dump).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); run UPDATE_GOLDEN=1 cargo test",
                path.display()
            )
        });
        assert_eq!(
            dump,
            want,
            "compiled stream for {name} drifted from {} — review the codegen change and \
             regenerate with UPDATE_GOLDEN=1",
            path.display()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any generated counter/table program the verifier passes behaves
    /// bit-identically on both execution tiers over sampled traces.
    #[test]
    fn random_verified_programs_agree_across_tiers(
        rows in 1u32..3,
        size in 2u32..10,
        raw_accesses in proptest::collection::vec(0u32..48, 1..5),
        raw_trace in proptest::collection::vec(0u32..16, 1..8),
        table_sel in 0u32..2,
    ) {
        // decode (row, cell) pairs from one integer, kept in bounds so the
        // verifier accepts the program
        let with_table = table_sel == 1;
        let accesses: Vec<(u32, u32)> =
            raw_accesses.iter().map(|v| ((v / 16) % rows, (v % 16) % size)).collect();
        let mut b = ProgramBuilder::new("t");
        b.header("key", ValueType::Bit(32));
        b.header("op", ValueType::Bit(8));
        b.array("ctr", rows, size, 32);
        if with_table {
            b.table("tab", MatchKind::Exact, 32, 32, 64, true);
        }
        for (row, cell) in &accesses {
            b.count(
                None,
                "ctr",
                vec![Operand::int(i64::from(*row)), Operand::int(i64::from(*cell))],
                Operand::int(1),
            );
        }
        if with_table {
            // guarded write + unconditional read-back into a header
            b.guarded(
                Predicate::new(Operand::hdr("op"), CmpOp::Eq, Operand::int(1)),
                |b| {
                    b.write("tab", vec![Operand::hdr("key")], vec![Operand::hdr("key")]);
                },
            );
            b.get("got", "tab", vec![Operand::hdr("key")]);
            b.set_header("cached", Operand::var("got"));
        }
        b.forward();
        let program = b.build().expect("generated program is well-formed");
        let diags = PassManager::with_default_passes().run(&PassContext {
            tenant: "t".to_string(),
            isolated: false,
            programs: std::slice::from_ref(&program),
            placements: &[],
        });
        prop_assert!(!diags.has_errors(), "in-bounds program must verify clean:\n{}", diags);
        let mut opt_diags = DiagnosticSet::new();
        let optimized =
            Optimizer::with_default_passes().optimize("t", false, &program, &mut opt_diags);

        let (mut compiled, mut interp) = plane_pair(std::slice::from_ref(&optimized));
        for (i, raw) in raw_trace.iter().enumerate() {
            let mut fields = BTreeMap::new();
            fields.insert("key".to_string(), Value::Int(i64::from(raw % 4)));
            fields.insert("op".to_string(), Value::Int(i64::from(raw / 8)));
            let pkt = Packet::new("src", "dst", 1, fields);
            let mut a = pkt.clone();
            let mut b_pkt = pkt;
            let oa = compiled.process(&mut a);
            let ob = interp.process(&mut b_pkt);
            prop_assert_eq!(oa, ob, "outcome diverges at packet {}", i);
            prop_assert_eq!(&a, &b_pkt, "packet diverges at packet {}", i);
        }
        prop_assert_eq!(compiled.store().fingerprint(), interp.store().fingerprint());
        prop_assert_eq!(compiled.instructions_executed, interp.instructions_executed);
    }
}
