//! Failure-recovery invariants, property-tested over *generated* fault
//! schedules (ROADMAP item 4's failure-injection half, framed as
//! machine-checked invariants rather than one-off scenarios):
//!
//! 1. **Blast radius** — after any seeded [`FaultPlan`] over the victim's
//!    exclusive devices (applied mid-run on the workload's virtual clock,
//!    followed by controller failover and restore for every outage), a
//!    co-resident tenant on disjoint routes has bit-identical stats and
//!    store fingerprints to a fault-free run.
//! 2. **Recovery** — every affected tenant serves again after the restore
//!    (or surfaced as typed `Degraded` in between, never silently dropped).
//! 3. **Ledger balance** — the fault → quiesce → re-place → restore →
//!    re-place round-trip releases exactly what it booked: removing every
//!    tenant afterwards returns the ledger to a full network.

use clickinc::ClickIncService;
use clickinc::ServiceRequest;
use clickinc_lang::templates::{kvs_template, mlagg_template, KvsParams, MlAggParams};
use clickinc_runtime::workload::{
    KvsWorkload, KvsWorkloadConfig, MlAggWorkload, MlAggWorkloadConfig,
};
use clickinc_runtime::{EngineConfig, FaultInjector, FaultPlan, TenantStats};
use clickinc_topology::Topology;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;

const REQUESTS: usize = 256;
const RATE_PPS: f64 = 50_000_000.0;

#[derive(Debug, Clone)]
struct RunResult {
    bystander: TenantStats,
    fingerprints: BTreeMap<String, u64>,
    victim_union: BTreeSet<String>,
    bystander_devices: BTreeSet<String>,
}

impl RunResult {
    /// Fingerprints of the devices hosting the bystander that the victim
    /// never occupied — the set the blast-radius invariant compares.
    fn bystander_fingerprints(&self, also_exclude: &BTreeSet<String>) -> BTreeMap<String, u64> {
        self.fingerprints
            .iter()
            .filter(|(d, _)| {
                self.bystander_devices.contains(*d)
                    && !self.victim_union.contains(*d)
                    && !also_exclude.contains(*d)
            })
            .map(|(d, fp)| (d.clone(), *fp))
            .collect()
    }
}

fn devices_of(service: &ClickIncService, user: &str) -> BTreeSet<String> {
    let controller = service.controller();
    controller
        .devices_of(user)
        .into_iter()
        .map(|id| controller.topology().node(id).name.clone())
        .collect()
}

fn victim_workload(numeric_id: i64, seed: u64) -> KvsWorkload {
    KvsWorkload::new(KvsWorkloadConfig {
        tenant: "victim_kvs".to_string(),
        user_id: numeric_id,
        keys: 500,
        skew: 1.1,
        requests: REQUESTS,
        rate_pps: RATE_PPS,
        seed,
    })
}

/// Drive the two-tenant system through a fault schedule (or none), the
/// controller failover for every outage, and the restore; assert the
/// recovery invariants along the way.  `remove_and_balance` trades the final
/// stores (wiped by removal) for the ledger-balance assertion.
fn run(fault: Option<(u64, usize)>, remove_and_balance: bool) -> RunResult {
    let service = ClickIncService::with_config(
        Topology::emulation_topology_all_tofino(),
        EngineConfig { shards: 2, batch_size: 32, ..Default::default() },
    )
    .expect("valid config");
    let handles = service
        .deploy_all(vec![
            ServiceRequest::builder("victim_kvs")
                .template(kvs_template(
                    "victim_kvs",
                    KvsParams { cache_depth: 1000, ..Default::default() },
                ))
                .from_("pod0a")
                .from_("pod1a")
                .to("pod2b")
                .build()
                .expect("valid request"),
            ServiceRequest::builder("bg_agg")
                .template(mlagg_template(
                    "bg_agg",
                    MlAggParams { dims: 8, num_workers: 2, num_aggregators: 256, is_float: false },
                ))
                .from_("pod0b")
                .from_("pod1b")
                .to("pod2a")
                .build()
                .expect("valid request"),
        ])
        .expect("both tenants deploy");
    let mut victim_union = devices_of(&service, "victim_kvs");
    let bystander_devices = devices_of(&service, "bg_agg");
    let candidates: Vec<String> = victim_union.difference(&bystander_devices).cloned().collect();
    assert!(!candidates.is_empty(), "the victim has exclusive devices to fail");

    let engine = service.engine_handle();
    // the bystander's stream is identical in every run, fault or not
    let mut bg = MlAggWorkload::new(MlAggWorkloadConfig {
        tenant: "bg_agg".to_string(),
        user_id: handles[1].numeric_id(),
        workers: 2,
        rounds: 12,
        dims: 8,
        sparsity: 0.5,
        block_size: 4,
        rate_pps: RATE_PPS / 10.0,
        seed: 7,
    });
    engine.run_workload(&mut bg, usize::MAX, 16);

    // the victim's fault schedule rides its workload's virtual clock
    let horizon_ns = (REQUESTS as f64 / RATE_PPS * 1e9) as u64;
    let plan = match fault {
        Some((seed, faults)) => FaultPlan::random(seed, &candidates, horizon_ns, faults),
        None => FaultPlan::new(),
    };
    let outages = plan.outage_devices();
    let mut injector = FaultInjector::new(plan);
    let mut wl = victim_workload(handles[0].numeric_id(), 11);
    engine.run_workload_with_faults(&mut wl, usize::MAX, 16, &mut injector);
    service.flush();

    // controller failover for every outage…
    for device in &outages {
        service.fail_device(device).expect("known device");
        victim_union.extend(devices_of(&service, "victim_kvs"));
    }
    // …the victim either serves from its new placement or is parked typed
    if let Some(numeric_id) = service.controller().numeric_id_of("victim_kvs") {
        let mut wl = victim_workload(numeric_id, 13);
        engine.run_workload(&mut wl, usize::MAX, 16);
        service.flush();
    } else {
        assert_eq!(
            service.degraded_tenants(),
            vec!["victim_kvs".to_string()],
            "an unplaceable tenant parks Degraded, it is never dropped"
        );
    }
    // …and every restore retries the parked tenants
    for device in &outages {
        service.restore_device(device).expect("restores");
    }
    victim_union.extend(devices_of(&service, "victim_kvs"));
    assert!(service.degraded_tenants().is_empty(), "the restore revived every parked tenant");
    assert!(service.active_users().contains(&"victim_kvs".to_string()));

    // the recovered victim serves again
    let before = service.telemetry().tenant("victim_kvs").map(|t| t.completed).unwrap_or(0);
    let numeric_id = service.controller().numeric_id_of("victim_kvs").expect("serving");
    let mut wl = victim_workload(numeric_id, 17);
    engine.run_workload(&mut wl, usize::MAX, 16);
    service.flush();
    let after = service.telemetry().tenant("victim_kvs").map(|t| t.completed).unwrap_or(0);
    assert!(after > before, "the recovered victim completes requests again");

    if remove_and_balance {
        service.remove("victim_kvs").expect("removes the victim");
        service.remove("bg_agg").expect("removes the bystander");
        assert_eq!(
            service.remaining_resource_ratio(),
            1.0,
            "the failover round-trip left the ledger balanced"
        );
    }

    let outcome = service.finish();
    RunResult {
        bystander: outcome.telemetry.tenant("bg_agg").cloned().expect("bystander served"),
        fingerprints: outcome
            .stores
            .iter()
            .map(|(device, store)| (device.clone(), store.fingerprint()))
            .collect(),
        victim_union,
        bystander_devices,
    }
}

fn clean_baseline() -> &'static RunResult {
    static BASELINE: OnceLock<RunResult> = OnceLock::new();
    BASELINE.get_or_init(|| run(None, false))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn co_residents_are_bit_identical_under_any_fault_schedule(
        seed in 0u64..1_000,
        faults in 1usize..4,
    ) {
        let faulted = run(Some((seed, faults)), false);
        let clean = clean_baseline();
        prop_assert_eq!(
            &faulted.bystander,
            &clean.bystander,
            "co-resident stats diverged under fault schedule seed={} faults={}",
            seed,
            faults
        );
        prop_assert_eq!(faulted.bystander.fault_lost_packets, 0);
        let comparable = faulted.bystander_fingerprints(&clean.victim_union);
        prop_assert!(!comparable.is_empty(), "comparable bystander devices exist");
        prop_assert_eq!(
            comparable,
            clean.bystander_fingerprints(&faulted.victim_union),
            "co-resident store fingerprints diverged under the fault schedule"
        );
    }

    #[test]
    fn failover_round_trips_leave_the_ledger_balanced(
        seed in 0u64..1_000,
        faults in 1usize..4,
    ) {
        // the balance assertions live inside the harness
        run(Some((seed, faults)), true);
    }
}
