//! The register VM: the compiled execution tier of the data plane.
//!
//! [`compile`] lowers a device plane's installed snippets into a
//! [`CompiledImage`] at install time: every variable becomes a dense register
//! index, every state object resolves to its [`ObjectStore`] slot, hash seeds
//! and moduli become immediates, and the per-object kind dispatch the
//! interpreter performs per packet (is this a table? a sketch?) is burned
//! into kind-specialized opcodes.  The per-packet loop is then a match over
//! fixed-width ops with no string lookups, no `HashMap` probes for
//! variables, and no per-instruction tenant guard — the isolation predicate
//! the optimizer hoists into [`IrProgram::precondition`] gates each snippet
//! once per packet.
//!
//! The VM is bit-identical to the interpreter by construction: one IR
//! instruction compiles to exactly one [`VmInstr`] (so executed-instruction
//! telemetry matches), every operation evaluates through the same
//! [`clickinc_ir::eval`] reference semantics and the same [`ObjectStore`]
//! cell arithmetic, and `RandInt` advances the same per-tenant splitmix
//! stream.  The differential proptests in `tests/compiled_vs_interp.rs` hold
//! the two paths to equal store fingerprints, outcomes and counters on every
//! fig13 program.
//!
//! Registers are *generation-stamped*: instead of clearing the register file
//! per packet, each write records the current packet generation, and a read
//! whose stamp is stale falls back to the packet's Param field (the
//! interpreter's `env → param → None` chain) without any per-packet reset
//! cost.

use crate::packet::Packet;
use crate::state::{hash_seed, hash_with_seed, ObjectStore};
use clickinc_ir::{eval, AluOp, CmpOp, IrProgram, ObjectKind, OpCode, Operand, Value};
use std::collections::BTreeMap;

/// Which execution tier a device plane runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The register VM over install-time-compiled programs (the default).
    Compiled,
    /// The reference interpreter walking the IR directly.  Kept as the
    /// differential oracle and as an escape hatch (`--features interp-only`
    /// flips the default).
    Interpreted,
}

impl Default for ExecMode {
    fn default() -> ExecMode {
        if cfg!(feature = "interp-only") {
            ExecMode::Interpreted
        } else {
            ExecMode::Compiled
        }
    }
}

/// Slot sentinel for objects that are referenced but not declared on this
/// plane: every slot-indexed [`ObjectStore`] accessor treats an out-of-range
/// slot as the missing object (reads 0 / `None`, writes are no-ops), exactly
/// like the interpreter's name lookups.
const NO_SLOT: usize = usize::MAX;

/// A compiled operand: constants and metadata are immediates, variables are
/// register indices, header fields keep their name (the packet's header map
/// is the interface contract with the rest of the system).
#[derive(Debug, Clone, PartialEq)]
pub enum VmOperand {
    /// An immediate value.
    Const(Value),
    /// A register (a lowered variable).
    Reg(u32),
    /// A packet header field, as a dense index into the image's header-name
    /// table.  Reads go through a generation-stamped per-packet cache, so a
    /// field consulted by many guards costs one map probe per packet, not
    /// one per instruction.
    Header(u32),
    /// `meta.inc_user`.
    MetaUser,
    /// `meta.step`.
    MetaStep,
    /// An unknown metadata field (reads `None`, like the interpreter).
    MetaNone,
}

/// A compiled guard predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct VmPred {
    lhs: VmOperand,
    op: CmpOp,
    rhs: VmOperand,
}

/// Compiled row/cell addressing of an array or sequence access, mirroring the
/// interpreter's index-arity decode (0 operands → cell 0, 1 → cell, 2+ →
/// row and cell).
#[derive(Debug, Clone)]
pub enum VmIndex {
    /// No index operands.
    None,
    /// One operand: the cell.
    One(VmOperand),
    /// Two (or more) operands: row and cell.
    Two(VmOperand, VmOperand),
}

/// A compiled operation.  State ops are kind-specialized at compile time and
/// carry their resolved store slot.
#[derive(Debug, Clone)]
pub enum VmOp {
    /// `reg = src`.
    Assign { dest: u32, src: VmOperand },
    /// `reg = lhs op rhs`.
    Alu { dest: u32, op: AluOp, lhs: VmOperand, rhs: VmOperand, float: bool },
    /// `reg = lhs cmp rhs`.
    Cmp { dest: u32, op: CmpOp, lhs: VmOperand, rhs: VmOperand },
    /// Hash with a precomputed seed and modulus (hash objects are immutable,
    /// so both are compile-time constants).
    Hash { dest: u32, seed: u64, modulus: Option<u32>, keys: Vec<VmOperand> },
    /// Table lookup.
    TableGet { dest: u32, slot: usize, key: Vec<VmOperand> },
    /// Sketch estimate / Bloom membership.
    SketchEstimate { dest: u32, slot: usize, key: VmOperand },
    /// Array/sequence cell read.
    ArrayRead { dest: u32, slot: usize, index: VmIndex },
    /// Table insert/overwrite.
    TableWrite { slot: usize, key: Vec<VmOperand>, values: Vec<VmOperand> },
    /// Sketch update through a `write` (delta comes from the first value,
    /// defaulting to 1).
    SketchWrite { slot: usize, key: VmOperand, value: VmOperand },
    /// Array/sequence cell write.
    ArrayWrite { slot: usize, index: VmIndex, value: VmOperand },
    /// Sketch count (the result is the new minimum estimate).
    SketchCount { dest: Option<u32>, slot: usize, key: VmOperand, delta: VmOperand },
    /// Array/sequence counter add (the result is the post-increment value).
    ArrayCount { dest: Option<u32>, slot: usize, index: VmIndex, delta: VmOperand },
    /// Clear an object.
    Clear { slot: usize },
    /// Remove a table entry.
    TableDelete { slot: usize, key: Vec<VmOperand> },
    /// Reset an array/sequence cell (the delete decode truncates indices with
    /// an `as u32` cast, matching the interpreter's `delete`).
    ArrayDelete { slot: usize, index: VmIndex },
    /// Drop the packet.
    Drop,
    /// Forward (reasserts forward unless the packet already bounced).
    Forward,
    /// Rewrite headers and bounce the packet back.
    Back { updates: Vec<(u32, VmOperand)> },
    /// Mirror a copy with rewritten headers.
    Mirror { updates: Vec<(u32, VmOperand)> },
    /// Mirror a plain copy (multicast / copy-to-CPU are modelled as mirrors).
    MirrorPlain,
    /// Write a header field.
    SetHeader { field: u32, value: VmOperand },
    /// The toy crypto unit (`input ^ 0x5a5a5a5a`).
    Crypto { dest: u32, input: VmOperand },
    /// Draw from the tenant's deterministic random stream.
    RandInt { dest: u32, bound: VmOperand },
    /// Ones-style checksum (`sum & 0xffff`).
    Checksum { dest: u32, inputs: Vec<VmOperand> },
    /// No operation (still counts as executed, like the interpreter).
    NoOp,
}

/// One compiled instruction: the (possibly empty) guard plus the operation.
/// Exactly one IR instruction compiles to one `VmInstr`, keeping the
/// executed-instruction counters bit-identical across tiers.
#[derive(Debug, Clone)]
pub struct VmInstr {
    guard: Vec<VmPred>,
    op: VmOp,
}

/// A guard block: consecutive instructions sharing a leading guard
/// conjunction, evaluated once per packet at block entry.  The grouping is a
/// pure compile-time transform of the straight-line stream — a block is only
/// formed when no instruction in its body writes a register or header field
/// the shared predicates read, so block-entry evaluation observes exactly the
/// values per-instruction evaluation would.  A failing shared guard skips the
/// whole body, which is telemetry-identical to the interpreter failing each
/// instruction's full conjunction individually.
#[derive(Debug, Clone)]
pub struct VmBlock {
    guard: Vec<VmPred>,
    body: Vec<VmInstr>,
}

/// One compiled snippet: the hoisted program precondition plus the guard
/// blocks covering the instruction stream in order.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Snippet name (the tenant program id).
    pub name: String,
    precondition: Vec<VmPred>,
    blocks: Vec<VmBlock>,
}

impl CompiledProgram {
    /// Number of compiled instructions.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.body.len()).sum()
    }

    /// Whether the snippet compiled to no instructions.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|b| b.body.is_empty())
    }
}

/// The compiled form of every snippet installed on one device plane, sharing
/// a single register namespace (the interpreter shares one `env` across all
/// snippets of a packet, so variables of the same name must alias).
#[derive(Debug, Clone, Default)]
pub struct CompiledImage {
    programs: Vec<CompiledProgram>,
    /// Register index → variable name, for the Param-field fallback of reads
    /// from never-written registers.
    reg_names: Vec<String>,
    /// Variable name → register, for the Param export epilogue.
    var_regs: BTreeMap<String, u32>,
    /// Header index → field name (cache misses and header writes resolve
    /// the name here).
    header_names: Vec<String>,
}

impl CompiledImage {
    /// Number of registers the image needs.
    pub fn num_regs(&self) -> usize {
        self.reg_names.len()
    }

    /// Number of distinct header fields the image touches.
    pub fn num_headers(&self) -> usize {
        self.header_names.len()
    }

    /// The compiled snippets, in installation order.
    pub fn programs(&self) -> &[CompiledProgram] {
        &self.programs
    }

    /// The register assigned to a variable, if any instruction mentions it.
    pub fn register_of(&self, var: &str) -> Option<u32> {
        self.var_regs.get(var).copied()
    }

    /// Render the whole compiled stream in a stable textual form — the golden
    /// snapshots of the fig13 programs pin this down, so it must only change
    /// when the compiler's output actually changes.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for prog in &self.programs {
            let _ = writeln!(out, "program {} ({} instr):", prog.name, prog.len());
            if !prog.precondition.is_empty() {
                let _ = writeln!(out, "  precondition: {}", self.preds(&prog.precondition));
            }
            for blk in &prog.blocks {
                if blk.guard.is_empty() {
                    let _ = writeln!(out, "  block:");
                } else {
                    let _ = writeln!(out, "  block if {}:", self.preds(&blk.guard));
                }
                for vi in &blk.body {
                    if vi.guard.is_empty() {
                        let _ = writeln!(out, "    {}", self.op_str(&vi.op));
                    } else {
                        let _ = writeln!(
                            out,
                            "    if {} -> {}",
                            self.preds(&vi.guard),
                            self.op_str(&vi.op)
                        );
                    }
                }
            }
        }
        out
    }

    fn opnd(&self, o: &VmOperand) -> String {
        match o {
            VmOperand::Const(v) => format!("{v}"),
            VmOperand::Reg(r) => format!("r{r}:{}", self.reg_names[*r as usize]),
            VmOperand::Header(h) => format!("hdr.{}", self.header_names[*h as usize]),
            VmOperand::MetaUser => "meta.inc_user".into(),
            VmOperand::MetaStep => "meta.step".into(),
            VmOperand::MetaNone => "meta.?".into(),
        }
    }

    fn preds(&self, ps: &[VmPred]) -> String {
        ps.iter()
            .map(|p| format!("{} {:?} {}", self.opnd(&p.lhs), p.op, self.opnd(&p.rhs)))
            .collect::<Vec<_>>()
            .join(" && ")
    }

    fn list(&self, os: &[VmOperand]) -> String {
        os.iter().map(|o| self.opnd(o)).collect::<Vec<_>>().join(", ")
    }

    fn upd(&self, us: &[(u32, VmOperand)]) -> String {
        us.iter()
            .map(|(f, v)| format!("{}: {}", self.header_names[*f as usize], self.opnd(v)))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn idx(&self, i: &VmIndex) -> String {
        match i {
            VmIndex::None => "[]".into(),
            VmIndex::One(c) => format!("[{}]", self.opnd(c)),
            VmIndex::Two(r, c) => format!("[{}, {}]", self.opnd(r), self.opnd(c)),
        }
    }

    fn slot(&self, s: usize) -> String {
        if s == usize::MAX {
            "slot:?".into()
        } else {
            format!("slot:{s}")
        }
    }

    fn op_str(&self, op: &VmOp) -> String {
        match op {
            VmOp::Assign { dest, src } => {
                format!("r{dest} = {}", self.opnd(src))
            }
            VmOp::Alu { dest, op, lhs, rhs, float } => format!(
                "r{dest} = {} {op:?}{} {}",
                self.opnd(lhs),
                if *float { "f" } else { "" },
                self.opnd(rhs)
            ),
            VmOp::Cmp { dest, op, lhs, rhs } => {
                format!("r{dest} = {} {op:?} {}", self.opnd(lhs), self.opnd(rhs))
            }
            VmOp::Hash { dest, seed, modulus, keys } => format!(
                "r{dest} = hash(seed={seed:#x}, mod={}, {})",
                modulus.map_or("none".into(), |m| m.to_string()),
                self.list(keys)
            ),
            VmOp::TableGet { dest, slot, key } => {
                format!("r{dest} = table_get {} ({})", self.slot(*slot), self.list(key))
            }
            VmOp::SketchEstimate { dest, slot, key } => {
                format!("r{dest} = sketch_est {} ({})", self.slot(*slot), self.opnd(key))
            }
            VmOp::ArrayRead { dest, slot, index } => {
                format!("r{dest} = array_read {}{}", self.slot(*slot), self.idx(index))
            }
            VmOp::TableWrite { slot, key, values } => {
                format!(
                    "table_write {} ({}) = [{}]",
                    self.slot(*slot),
                    self.list(key),
                    self.list(values)
                )
            }
            VmOp::SketchWrite { slot, key, value } => {
                format!(
                    "sketch_write {} ({}) += {}",
                    self.slot(*slot),
                    self.opnd(key),
                    self.opnd(value)
                )
            }
            VmOp::ArrayWrite { slot, index, value } => {
                format!(
                    "array_write {}{} = {}",
                    self.slot(*slot),
                    self.idx(index),
                    self.opnd(value)
                )
            }
            VmOp::SketchCount { dest, slot, key, delta } => format!(
                "{}sketch_count {} ({}) += {}",
                dest.map_or(String::new(), |d| format!("r{d} = ")),
                self.slot(*slot),
                self.opnd(key),
                self.opnd(delta)
            ),
            VmOp::ArrayCount { dest, slot, index, delta } => format!(
                "{}array_count {}{} += {}",
                dest.map_or(String::new(), |d| format!("r{d} = ")),
                self.slot(*slot),
                self.idx(index),
                self.opnd(delta)
            ),
            VmOp::Clear { slot } => format!("clear {}", self.slot(*slot)),
            VmOp::TableDelete { slot, key } => {
                format!("table_delete {} ({})", self.slot(*slot), self.list(key))
            }
            VmOp::ArrayDelete { slot, index } => {
                format!("array_delete {}{}", self.slot(*slot), self.idx(index))
            }
            VmOp::Drop => "drop".into(),
            VmOp::Forward => "forward".into(),
            VmOp::Back { updates } => format!("back {{{}}}", self.upd(updates)),
            VmOp::Mirror { updates } => format!("mirror {{{}}}", self.upd(updates)),
            VmOp::MirrorPlain => "mirror".into(),
            VmOp::SetHeader { field, value } => {
                format!("hdr.{} = {}", self.header_names[*field as usize], self.opnd(value))
            }
            VmOp::Crypto { dest, input } => format!("r{dest} = crypto({})", self.opnd(input)),
            VmOp::RandInt { dest, bound } => format!("r{dest} = randint({})", self.opnd(bound)),
            VmOp::Checksum { dest, inputs } => {
                format!("r{dest} = checksum({})", self.list(inputs))
            }
            VmOp::NoOp => "noop".into(),
        }
    }
}

struct Lowerer<'a> {
    kinds: &'a BTreeMap<String, ObjectKind>,
    store: &'a ObjectStore,
    reg_names: Vec<String>,
    var_regs: BTreeMap<String, u32>,
    header_names: Vec<String>,
    header_ids: BTreeMap<String, u32>,
}

impl<'a> Lowerer<'a> {
    fn hdr(&mut self, field: &str) -> u32 {
        if let Some(&h) = self.header_ids.get(field) {
            return h;
        }
        let h = self.header_names.len() as u32;
        self.header_names.push(field.to_string());
        self.header_ids.insert(field.to_string(), h);
        h
    }

    fn reg(&mut self, var: &str) -> u32 {
        if let Some(&r) = self.var_regs.get(var) {
            return r;
        }
        let r = self.reg_names.len() as u32;
        self.reg_names.push(var.to_string());
        self.var_regs.insert(var.to_string(), r);
        r
    }

    fn operand(&mut self, op: &Operand) -> VmOperand {
        match op {
            Operand::Const(v) => VmOperand::Const(v.clone()),
            Operand::Var(name) => VmOperand::Reg(self.reg(name)),
            Operand::Header(field) => VmOperand::Header(self.hdr(field)),
            Operand::Meta(field) => match field.as_str() {
                "inc_user" => VmOperand::MetaUser,
                "step" => VmOperand::MetaStep,
                _ => VmOperand::MetaNone,
            },
        }
    }

    fn operands(&mut self, ops: &[Operand]) -> Vec<VmOperand> {
        ops.iter().map(|o| self.operand(o)).collect()
    }

    fn index(&mut self, index: &[Operand]) -> VmIndex {
        match index.len() {
            0 => VmIndex::None,
            1 => VmIndex::One(self.operand(&index[0])),
            _ => VmIndex::Two(self.operand(&index[0]), self.operand(&index[1])),
        }
    }

    /// First element of an operand list, or a `None` immediate — the decode
    /// sketches and array writes apply to their key/value lists.
    fn first_or_none(&mut self, ops: &[Operand]) -> VmOperand {
        ops.first().map(|o| self.operand(o)).unwrap_or(VmOperand::Const(Value::None))
    }

    fn slot(&self, object: &str) -> usize {
        self.store.slot_of(object).unwrap_or(NO_SLOT)
    }

    fn op(&mut self, op: &OpCode) -> VmOp {
        match op {
            OpCode::Assign { dest, src } => {
                VmOp::Assign { dest: self.reg(dest), src: self.operand(src) }
            }
            OpCode::Alu { dest, op, lhs, rhs, float } => VmOp::Alu {
                dest: self.reg(dest),
                op: *op,
                lhs: self.operand(lhs),
                rhs: self.operand(rhs),
                float: *float,
            },
            OpCode::Cmp { dest, op, lhs, rhs } => VmOp::Cmp {
                dest: self.reg(dest),
                op: *op,
                lhs: self.operand(lhs),
                rhs: self.operand(rhs),
            },
            OpCode::Hash { dest, object, keys } => VmOp::Hash {
                dest: self.reg(dest),
                seed: hash_seed(object),
                modulus: self.store.hash_modulus(object),
                keys: self.operands(keys),
            },
            OpCode::ReadState { dest, object, index } => match self.kinds.get(object.as_str()) {
                Some(ObjectKind::Table { .. }) => VmOp::TableGet {
                    dest: self.reg(dest),
                    slot: self.slot(object),
                    key: self.operands(index),
                },
                Some(ObjectKind::Sketch { .. }) => VmOp::SketchEstimate {
                    dest: self.reg(dest),
                    slot: self.slot(object),
                    key: self.first_or_none(index),
                },
                Some(ObjectKind::Hash { .. }) => VmOp::Hash {
                    dest: self.reg(dest),
                    seed: hash_seed(object),
                    modulus: self.store.hash_modulus(object),
                    keys: self.operands(index),
                },
                _ => VmOp::ArrayRead {
                    dest: self.reg(dest),
                    slot: self.slot(object),
                    index: self.index(index),
                },
            },
            OpCode::WriteState { object, index, value } => match self.kinds.get(object.as_str()) {
                Some(ObjectKind::Table { .. }) => VmOp::TableWrite {
                    slot: self.slot(object),
                    key: self.operands(index),
                    values: self.operands(value),
                },
                Some(ObjectKind::Sketch { .. }) => VmOp::SketchWrite {
                    slot: self.slot(object),
                    key: self.first_or_none(index),
                    value: self.first_or_none(value),
                },
                _ => VmOp::ArrayWrite {
                    slot: self.slot(object),
                    index: self.index(index),
                    value: self.first_or_none(value),
                },
            },
            OpCode::CountState { dest, object, index, delta } => {
                let dest = dest.as_ref().map(|d| self.reg(d));
                match self.kinds.get(object.as_str()) {
                    Some(ObjectKind::Sketch { .. }) => VmOp::SketchCount {
                        dest,
                        slot: self.slot(object),
                        key: self.first_or_none(index),
                        delta: self.operand(delta),
                    },
                    _ => VmOp::ArrayCount {
                        dest,
                        slot: self.slot(object),
                        index: self.index(index),
                        delta: self.operand(delta),
                    },
                }
            }
            OpCode::ClearState { object } => VmOp::Clear { slot: self.slot(object) },
            OpCode::DeleteState { object, index } => match self.kinds.get(object.as_str()) {
                Some(ObjectKind::Table { .. }) => {
                    VmOp::TableDelete { slot: self.slot(object), key: self.operands(index) }
                }
                Some(ObjectKind::Array { .. }) | Some(ObjectKind::Seq { .. }) => {
                    VmOp::ArrayDelete { slot: self.slot(object), index: self.index(index) }
                }
                // hash/crypto/undeclared objects: the interpreter's delete is
                // a no-op, but the instruction still executes
                _ => VmOp::NoOp,
            },
            OpCode::Drop => VmOp::Drop,
            OpCode::Forward => VmOp::Forward,
            OpCode::Back { updates } => VmOp::Back { updates: self.updates(updates) },
            OpCode::Mirror { updates } => VmOp::Mirror { updates: self.updates(updates) },
            OpCode::Multicast { .. } | OpCode::CopyTo { .. } => VmOp::MirrorPlain,
            OpCode::SetHeader { field, value } => {
                VmOp::SetHeader { field: self.hdr(field), value: self.operand(value) }
            }
            OpCode::Crypto { dest, input, .. } => {
                VmOp::Crypto { dest: self.reg(dest), input: self.operand(input) }
            }
            OpCode::RandInt { dest, bound } => {
                VmOp::RandInt { dest: self.reg(dest), bound: self.operand(bound) }
            }
            OpCode::Checksum { dest, inputs } => {
                VmOp::Checksum { dest: self.reg(dest), inputs: self.operands(inputs) }
            }
            OpCode::NoOp => VmOp::NoOp,
        }
    }

    fn updates(&mut self, updates: &[(String, Operand)]) -> Vec<(u32, VmOperand)> {
        updates.iter().map(|(f, v)| (self.hdr(f), self.operand(v))).collect()
    }
}

/// Compile every installed snippet against the plane's object-kind index and
/// store slots.  Called at install time (and re-called on uninstall), never
/// per packet.
pub fn compile(
    snippets: &[IrProgram],
    kinds: &BTreeMap<String, ObjectKind>,
    store: &ObjectStore,
) -> CompiledImage {
    let mut lw = Lowerer {
        kinds,
        store,
        reg_names: Vec::new(),
        var_regs: BTreeMap::new(),
        header_names: Vec::new(),
        header_ids: BTreeMap::new(),
    };
    let mut programs = Vec::with_capacity(snippets.len());
    for snippet in snippets {
        let precondition = snippet
            .precondition
            .as_ref()
            .map(|g| g.all.iter().map(|p| pred(&mut lw, p)).collect())
            .unwrap_or_default();
        let ops: Vec<VmInstr> = snippet
            .instructions
            .iter()
            .map(|instr| VmInstr {
                guard: instr
                    .guard
                    .as_ref()
                    .map(|g| g.all.iter().map(|p| pred(&mut lw, p)).collect())
                    .unwrap_or_default(),
                op: lw.op(&instr.op),
            })
            .collect();
        let blocks = form_blocks(ops);
        programs.push(CompiledProgram { name: snippet.name.clone(), precondition, blocks });
    }
    CompiledImage {
        programs,
        reg_names: lw.reg_names,
        var_regs: lw.var_regs,
        header_names: lw.header_names,
    }
}

/// Group the straight-line instruction stream into guard blocks.
///
/// A lowered `if`-tree repeats the branch conjunction on every instruction of
/// the branch; hoisting the shared prefix to block level evaluates it once
/// per packet instead of once per instruction.  Soundness: an instruction may
/// ride in a block only while no *earlier or same* body instruction could
/// have changed what the shared predicates read — so a block is closed
/// immediately after any body instruction that writes a register or header
/// field mentioned by the shared guard (that instruction itself is safe:
/// its guard was checked before it ran, exactly as the interpreter does).
fn form_blocks(instrs: Vec<VmInstr>) -> Vec<VmBlock> {
    let mut blocks: Vec<VmBlock> = Vec::new();
    let mut open = false;
    for instr in instrs {
        if open {
            let blk = blocks.last_mut().expect("open implies a block exists");
            let extends = instr.guard.len() >= blk.guard.len()
                && instr.guard[..blk.guard.len()] == blk.guard[..]
                // an unguarded block would swallow everything; only group
                // instructions under a real shared conjunction (or runs of
                // fully unguarded instructions)
                && (blk.guard.is_empty() == instr.guard.is_empty() || !blk.guard.is_empty());
            if extends {
                let residual = instr.guard[blk.guard.len()..].to_vec();
                let closes = writes_guard_operand(&instr.op, &blk.guard);
                blk.body.push(VmInstr { guard: residual, op: instr.op });
                if closes {
                    open = false;
                }
                continue;
            }
        }
        let closes = writes_guard_operand(&instr.op, &instr.guard);
        blocks.push(VmBlock {
            guard: instr.guard,
            body: vec![VmInstr { guard: Vec::new(), op: instr.op }],
        });
        open = !closes;
    }
    blocks
}

/// Whether executing `op` writes a register or header field any of `preds`
/// reads.  (Mirror updates touch only the mirrored copy; store writes never
/// feed predicates, which read registers, headers and metadata only.)
fn writes_guard_operand(op: &VmOp, preds: &[VmPred]) -> bool {
    if preds.is_empty() {
        return false;
    }
    let mut reg_w: Option<u32> = None;
    let mut hdr_w: &[(u32, VmOperand)] = &[];
    let mut hdr_one: Option<u32> = None;
    match op {
        VmOp::Assign { dest, .. }
        | VmOp::Alu { dest, .. }
        | VmOp::Cmp { dest, .. }
        | VmOp::Hash { dest, .. }
        | VmOp::TableGet { dest, .. }
        | VmOp::SketchEstimate { dest, .. }
        | VmOp::ArrayRead { dest, .. }
        | VmOp::Crypto { dest, .. }
        | VmOp::RandInt { dest, .. }
        | VmOp::Checksum { dest, .. } => reg_w = Some(*dest),
        VmOp::SketchCount { dest, .. } | VmOp::ArrayCount { dest, .. } => reg_w = *dest,
        VmOp::SetHeader { field, .. } => hdr_one = Some(*field),
        VmOp::Back { updates } => hdr_w = updates,
        _ => {}
    }
    let touches = |o: &VmOperand| match o {
        VmOperand::Reg(r) => reg_w == Some(*r),
        VmOperand::Header(h) => hdr_one == Some(*h) || hdr_w.iter().any(|(f, _)| f == h),
        _ => false,
    };
    preds.iter().any(|p| touches(&p.lhs) || touches(&p.rhs))
}

fn pred(lw: &mut Lowerer<'_>, p: &clickinc_ir::Predicate) -> VmPred {
    VmPred { lhs: lw.operand(&p.lhs), op: p.op, rhs: lw.operand(&p.rhs) }
}

/// The plane-owned register file, generation-stamped so it never needs a
/// per-packet reset.
#[derive(Debug, Clone, Default)]
pub struct RegFile {
    regs: Vec<Value>,
    gen: Vec<u64>,
    /// Per-packet header-field cache (same generation discipline as the
    /// registers; writes go through both the packet and the cache).
    hdr_vals: Vec<Value>,
    hdr_gen: Vec<u64>,
    cur: u64,
}

impl RegFile {
    /// Size the file for an image (called after every recompile; stamps
    /// reset, so no stale value can leak across images).
    pub fn reset(&mut self, num_regs: usize, num_headers: usize) {
        self.regs.clear();
        self.regs.resize(num_regs, Value::None);
        self.gen.clear();
        self.gen.resize(num_regs, 0);
        self.hdr_vals.clear();
        self.hdr_vals.resize(num_headers, Value::None);
        self.hdr_gen.clear();
        self.hdr_gen.resize(num_headers, 0);
        self.cur = 0;
    }

    fn begin_packet(&mut self) {
        self.cur += 1;
    }

    fn set(&mut self, reg: u32, value: Value) {
        let r = reg as usize;
        self.regs[r] = value;
        self.gen[r] = self.cur;
    }

    fn get(&self, reg: u32) -> Option<&Value> {
        let r = reg as usize;
        if self.gen[r] == self.cur {
            Some(&self.regs[r])
        } else {
            None
        }
    }
}

/// Everything `exec` needs alongside the image: the mutable store, the
/// register file and the per-tenant random-draw counters.
pub struct VmCtx<'a> {
    /// The plane's object store.
    pub store: &'a mut ObjectStore,
    /// The plane's register file.
    pub regs: &'a mut RegFile,
    /// Per-tenant `RandInt` draw counters (shared with the interpreter, so a
    /// mid-stream exec-mode switch continues the same sequence).
    pub rand_streams: &'a mut BTreeMap<i64, u64>,
}

fn load(op: &VmOperand, ctx: &mut VmCtx<'_>, image: &CompiledImage, pkt: &Packet) -> Value {
    match op {
        VmOperand::Const(v) => v.clone(),
        VmOperand::Reg(r) => match ctx.regs.get(*r) {
            Some(v) => v.clone(),
            None => {
                pkt.inc.param.get(&image.reg_names[*r as usize]).cloned().unwrap_or(Value::None)
            }
        },
        VmOperand::Header(field) => {
            // first touch per packet probes the header map; every later read
            // of the same field (typically a guard consulted by dozens of
            // instructions) hits the generation-stamped cache
            let h = *field as usize;
            if ctx.regs.hdr_gen[h] == ctx.regs.cur {
                ctx.regs.hdr_vals[h].clone()
            } else {
                let v = pkt.inc.get(&image.header_names[h]);
                ctx.regs.hdr_vals[h] = v.clone();
                ctx.regs.hdr_gen[h] = ctx.regs.cur;
                v
            }
        }
        VmOperand::MetaUser => Value::Int(pkt.inc.user),
        VmOperand::MetaStep => Value::Int(pkt.inc.step),
        VmOperand::MetaNone => Value::None,
    }
}

fn pred_holds(p: &VmPred, ctx: &mut VmCtx<'_>, image: &CompiledImage, pkt: &Packet) -> bool {
    let lhs = load(&p.lhs, ctx, image, pkt);
    let rhs = load(&p.rhs, ctx, image, pkt);
    eval::compare(&lhs, p.op, &rhs)
}

/// The interpreter's index-arity decode: row/cell from up to two operands,
/// folding negatives through `unsigned_abs`.
fn row_cell(
    index: &VmIndex,
    ctx: &mut VmCtx<'_>,
    image: &CompiledImage,
    pkt: &Packet,
) -> (u32, u32) {
    let cell = |op: &VmOperand, ctx: &mut VmCtx<'_>| {
        load(op, ctx, image, pkt).as_int().unwrap_or(0).unsigned_abs() as u32
    };
    match index {
        VmIndex::None => (0, 0),
        VmIndex::One(c) => (0, cell(c, ctx)),
        VmIndex::Two(r, c) => (cell(r, ctx), cell(c, ctx)),
    }
}

/// The interpreter's *delete* decode, which truncates with an `as u32` cast
/// instead of `unsigned_abs`.
fn delete_cell(
    index: &VmIndex,
    ctx: &mut VmCtx<'_>,
    image: &CompiledImage,
    pkt: &Packet,
) -> (u32, u32) {
    let cell = |op: &VmOperand, ctx: &mut VmCtx<'_>| {
        load(op, ctx, image, pkt).as_int().unwrap_or(0) as u32
    };
    match index {
        VmIndex::None => (0, 0),
        VmIndex::One(c) => (0, cell(c, ctx)),
        VmIndex::Two(r, c) => {
            let row = cell(r, ctx);
            (row, cell(c, ctx))
        }
    }
}

/// Outcome accumulator threaded through one packet's execution.
pub struct VmRun {
    /// Resulting action (`Forward` unless a packet action changed it).
    pub action: crate::interp::PacketAction,
    /// Mirrored copies.
    pub mirrored: Vec<Packet>,
    /// Guard-passing instructions executed.
    pub executed: usize,
}

/// Run one packet through every compiled snippet of an image.
pub fn exec(image: &CompiledImage, ctx: &mut VmCtx<'_>, pkt: &mut Packet) -> VmRun {
    use crate::interp::PacketAction;
    ctx.regs.begin_packet();
    let mut run = VmRun { action: PacketAction::Forward, mirrored: Vec::new(), executed: 0 };
    for prog in &image.programs {
        if !prog.precondition.iter().all(|p| pred_holds(p, ctx, image, pkt)) {
            continue;
        }
        for blk in &prog.blocks {
            // shared conjunction, checked once for the whole body (a failure
            // here fails every body instruction's full guard)
            if !blk.guard.iter().all(|p| pred_holds(p, ctx, image, pkt)) {
                continue;
            }
            for vi in &blk.body {
                if !vi.guard.iter().all(|p| pred_holds(p, ctx, image, pkt)) {
                    continue;
                }
                run.executed += 1;
                step(&vi.op, ctx, image, pkt, &mut run);
            }
        }
    }
    run
}

fn step(op: &VmOp, ctx: &mut VmCtx<'_>, image: &CompiledImage, pkt: &mut Packet, run: &mut VmRun) {
    use crate::interp::PacketAction;
    match op {
        VmOp::Assign { dest, src } => {
            let v = load(src, ctx, image, pkt);
            ctx.regs.set(*dest, v);
        }
        VmOp::Alu { dest, op, lhs, rhs, float } => {
            let a = load(lhs, ctx, image, pkt);
            let b = load(rhs, ctx, image, pkt);
            ctx.regs.set(*dest, eval::alu(*op, &a, &b, *float));
        }
        VmOp::Cmp { dest, op, lhs, rhs } => {
            let a = load(lhs, ctx, image, pkt);
            let b = load(rhs, ctx, image, pkt);
            ctx.regs.set(*dest, Value::Bool(eval::compare(&a, *op, &b)));
        }
        VmOp::Hash { dest, seed, modulus, keys } => {
            let key_values: Vec<Value> = keys.iter().map(|k| load(k, ctx, image, pkt)).collect();
            ctx.regs.set(*dest, Value::Int(hash_with_seed(*seed, *modulus, &key_values)));
        }
        VmOp::TableGet { dest, slot, key } => {
            let key_values: Vec<Value> = key.iter().map(|k| load(k, ctx, image, pkt)).collect();
            let v = ctx.store.table_get_slot(*slot, &key_values);
            ctx.regs.set(*dest, v);
        }
        VmOp::SketchEstimate { dest, slot, key } => {
            let k = load(key, ctx, image, pkt);
            let v = Value::Int(ctx.store.sketch_estimate_slot(*slot, &k));
            ctx.regs.set(*dest, v);
        }
        VmOp::ArrayRead { dest, slot, index } => {
            let (row, cell) = row_cell(index, ctx, image, pkt);
            let v = Value::Int(ctx.store.array_read_slot(*slot, row, cell));
            ctx.regs.set(*dest, v);
        }
        VmOp::TableWrite { slot, key, values } => {
            let key_values: Vec<Value> = key.iter().map(|k| load(k, ctx, image, pkt)).collect();
            let vals: Vec<Value> = values.iter().map(|v| load(v, ctx, image, pkt)).collect();
            ctx.store.table_write_slot(*slot, &key_values, vals);
        }
        VmOp::SketchWrite { slot, key, value } => {
            let k = load(key, ctx, image, pkt);
            let delta = load(value, ctx, image, pkt).as_int().unwrap_or(1);
            ctx.store.sketch_count_slot(*slot, &k, delta);
        }
        VmOp::ArrayWrite { slot, index, value } => {
            let (row, cell) = row_cell(index, ctx, image, pkt);
            let v = load(value, ctx, image, pkt).as_int().unwrap_or(0);
            ctx.store.array_write_slot(*slot, row, cell, v);
        }
        VmOp::SketchCount { dest, slot, key, delta } => {
            let k = load(key, ctx, image, pkt);
            let d = load(delta, ctx, image, pkt).as_int().unwrap_or(1);
            let result = ctx.store.sketch_count_slot(*slot, &k, d);
            if let Some(dest) = dest {
                ctx.regs.set(*dest, Value::Int(result));
            }
        }
        VmOp::ArrayCount { dest, slot, index, delta } => {
            let (row, cell) = row_cell(index, ctx, image, pkt);
            let d = load(delta, ctx, image, pkt).as_int().unwrap_or(1);
            let result = ctx.store.array_add_slot(*slot, row, cell, d);
            if let Some(dest) = dest {
                ctx.regs.set(*dest, Value::Int(result));
            }
        }
        VmOp::Clear { slot } => ctx.store.clear_slot(*slot),
        VmOp::TableDelete { slot, key } => {
            let key_values: Vec<Value> = key.iter().map(|k| load(k, ctx, image, pkt)).collect();
            ctx.store.table_remove_slot(*slot, &key_values);
        }
        VmOp::ArrayDelete { slot, index } => {
            let (row, cell) = delete_cell(index, ctx, image, pkt);
            ctx.store.array_write_slot(*slot, row, cell, 0);
        }
        VmOp::Drop => run.action = PacketAction::Drop,
        VmOp::Forward => {
            if run.action != PacketAction::Back {
                run.action = PacketAction::Forward;
            }
        }
        VmOp::Back { updates } => {
            for (field, value) in updates {
                let v = load(value, ctx, image, pkt);
                set_header(*field, v, ctx, image, pkt);
            }
            run.action = PacketAction::Back;
        }
        VmOp::Mirror { updates } => {
            // updates apply to the copy only — the live packet (and therefore
            // the header cache) is untouched
            let mut copy = pkt.clone();
            for (field, value) in updates {
                let v = load(value, ctx, image, pkt);
                copy.inc.set(&image.header_names[*field as usize], v);
            }
            run.mirrored.push(copy);
        }
        VmOp::MirrorPlain => run.mirrored.push(pkt.clone()),
        VmOp::SetHeader { field, value } => {
            let v = load(value, ctx, image, pkt);
            set_header(*field, v, ctx, image, pkt);
        }
        VmOp::Crypto { dest, input } => {
            let v = load(input, ctx, image, pkt).as_int().unwrap_or(0);
            ctx.regs.set(*dest, Value::Int(v ^ 0x5a5a_5a5a));
        }
        VmOp::RandInt { dest, bound } => {
            let b = load(bound, ctx, image, pkt).as_int().unwrap_or(i64::MAX).max(1);
            // the same splitmix64 per-tenant stream the interpreter draws from
            let draw = ctx.rand_streams.entry(pkt.inc.user).or_insert(0);
            *draw += 1;
            let mut z = (pkt.inc.user as u64) ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ctx.regs.set(*dest, Value::Int((z % b as u64) as i64));
        }
        VmOp::Checksum { dest, inputs } => {
            let sum: i64 =
                inputs.iter().map(|i| load(i, ctx, image, pkt).as_int().unwrap_or(0)).sum();
            ctx.regs.set(*dest, Value::Int(sum & 0xffff));
        }
        VmOp::NoOp => {}
    }
}

/// Header write-through: the packet is the source of truth, the cache just
/// mirrors it so subsequent reads skip the map probe.
fn set_header(
    field: u32,
    value: Value,
    ctx: &mut VmCtx<'_>,
    image: &CompiledImage,
    pkt: &mut Packet,
) {
    let h = field as usize;
    pkt.inc.set(&image.header_names[h], value.clone());
    ctx.regs.hdr_vals[h] = value;
    ctx.regs.hdr_gen[h] = ctx.regs.cur;
}

/// Export the configured Param temporaries out of the register file into the
/// packet (the interpreter's forward-path epilogue).
pub fn export_params(image: &CompiledImage, regs: &RegFile, exports: &[String], pkt: &mut Packet) {
    for var in exports {
        if let Some(&reg) = image.var_regs.get(var) {
            if let Some(value) = regs.get(reg) {
                pkt.inc.param.insert(var.clone(), value.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{DevicePlane, PacketAction};
    use crate::packet::kvs_request;
    use clickinc_device::DeviceModel;
    use clickinc_frontend::compile_source;
    use clickinc_ir::{Guard, Operand, Predicate, ProgramBuilder};
    use clickinc_lang::templates::{kvs_template, KvsParams};

    #[test]
    fn both_tiers_agree_on_kvs_traffic() {
        let t = kvs_template("kvs", KvsParams { cache_depth: 64, ..Default::default() });
        let ir = compile_source("kvs", &t.source).unwrap();
        let mut compiled = DevicePlane::new("SW0", DeviceModel::tofino());
        compiled.install(ir.clone());
        compiled.set_exec_mode(ExecMode::Compiled);
        let mut interp = DevicePlane::new("SW0", DeviceModel::tofino());
        interp.install(ir);
        interp.set_exec_mode(ExecMode::Interpreted);
        for plane in [&mut compiled, &mut interp] {
            plane.store_mut().table_write("cache", &[Value::Int(3)], vec![Value::Int(33)]);
        }
        for key in [3i64, 9, 3, 17, 9, 9] {
            let mut a = kvs_request("c", "s", 0, key);
            let mut b = kvs_request("c", "s", 0, key);
            let oa = compiled.process(&mut a);
            let ob = interp.process(&mut b);
            assert_eq!(oa, ob, "outcomes diverge on key {key}");
            assert_eq!(a, b, "packets diverge on key {key}");
        }
        assert_eq!(compiled.store().fingerprint(), interp.store().fingerprint());
        assert_eq!(compiled.instructions_executed, interp.instructions_executed);
    }

    #[test]
    fn unset_registers_fall_back_to_the_param_field() {
        let mut b = ProgramBuilder::new("p");
        b.set_header("out", Operand::Var("x".into()));
        let mut plane = DevicePlane::new("SW0", DeviceModel::tofino());
        plane.install(b.build().unwrap());
        plane.set_exec_mode(ExecMode::Compiled);
        let mut pkt = kvs_request("c", "s", 0, 1);
        pkt.inc.param.insert("x".into(), Value::Int(42));
        plane.process(&mut pkt);
        assert_eq!(pkt.inc.get("out"), Value::Int(42));
        // and without the param, the register reads None
        let mut bare = kvs_request("c", "s", 0, 1);
        plane.process(&mut bare);
        assert_eq!(bare.inc.get("out"), Value::None);
    }

    #[test]
    fn preconditions_gate_whole_snippets_in_both_tiers() {
        let mut b = ProgramBuilder::new("p");
        b.set_header("seen", Operand::int(1));
        let mut prog = b.build().unwrap();
        prog.precondition = Some(Guard::single(Predicate::new(
            Operand::Meta("inc_user".into()),
            CmpOp::Eq,
            Operand::int(7),
        )));
        for mode in [ExecMode::Compiled, ExecMode::Interpreted] {
            let mut plane = DevicePlane::new("SW0", DeviceModel::tofino());
            plane.install(prog.clone());
            plane.set_exec_mode(mode);
            let mut other = kvs_request("c", "s", 3, 1);
            let skipped = plane.process(&mut other);
            assert_eq!(skipped.instructions_executed, 0, "{mode:?}");
            assert_eq!(skipped.action, PacketAction::Forward);
            assert_eq!(other.inc.get("seen"), Value::None);
            let mut mine = kvs_request("c", "s", 7, 1);
            let ran = plane.process(&mut mine);
            assert_eq!(ran.instructions_executed, 1, "{mode:?}");
            assert_eq!(mine.inc.get("seen"), Value::Int(1));
        }
    }
}
