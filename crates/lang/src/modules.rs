//! The built-in module library.
//!
//! ClickINC "encapsulates common INC functionality into modules such as various
//! sketches, hash functions, providing users with a library" (paper §1).  The
//! frontend resolves calls in a user program against this library: object
//! constructors (`Array`, `Table`, `Hash`, `Seq`, `Sketch`, `Crypto`), INC
//! primitives (`get`, `write`, `count`, `clear`, `del`, `drop`, `forward`,
//! `back`, `mirror`, `multicast`, `copyto`), the Python built-ins of Table 7,
//! and the provider templates (`MLAgg`, `KVS`, `DQAcc`).

use std::collections::BTreeMap;
use std::fmt;

/// Object constructors of the ClickINC language (Fig. 5 "Object").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectCtor {
    /// `Array(row=..., size=..., w=...)`
    Array,
    /// `Table(type=..., keys=..., vals=...)`
    Table,
    /// `Hash(type=..., key=...)`
    Hash,
    /// `Seq(size=..., w=...)`
    Seq,
    /// `Sketch(type="count-min" | "bloom-filter", keys=...)`
    Sketch,
    /// `Crypto(type="aes" | "ecs")`
    Crypto,
}

impl ObjectCtor {
    /// Resolve a constructor name.
    pub fn from_name(name: &str) -> Option<ObjectCtor> {
        Some(match name {
            "Array" => ObjectCtor::Array,
            "Table" => ObjectCtor::Table,
            "Hash" => ObjectCtor::Hash,
            "Seq" => ObjectCtor::Seq,
            "Sketch" => ObjectCtor::Sketch,
            "Crypto" => ObjectCtor::Crypto,
            _ => return None,
        })
    }
}

impl fmt::Display for ObjectCtor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObjectCtor::Array => "Array",
            ObjectCtor::Table => "Table",
            ObjectCtor::Hash => "Hash",
            ObjectCtor::Seq => "Seq",
            ObjectCtor::Sketch => "Sketch",
            ObjectCtor::Crypto => "Crypto",
        };
        write!(f, "{s}")
    }
}

/// INC primitives operating on objects and packets (Fig. 5 "Primitive").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimitiveKind {
    /// `get(obj, key)` / `read(obj, key)`
    Get,
    /// `write(obj, key, value)`
    Write,
    /// `count(obj, key, delta)`
    Count,
    /// `clear(obj)`
    Clear,
    /// `del(obj, key)`
    Del,
    /// `drop()`
    Drop,
    /// `fwd()` / `forward(hdr)`
    Forward,
    /// `back(hdr={...})`
    Back,
    /// `mirror(hdr={...})`
    Mirror,
    /// `multicast(group)`
    Multicast,
    /// `copyto(target, value)` / `copy(target, value)`
    CopyTo,
}

impl PrimitiveKind {
    /// Resolve a primitive by the name used in source programs.
    pub fn from_name(name: &str) -> Option<PrimitiveKind> {
        Some(match name {
            "get" | "read" => PrimitiveKind::Get,
            "write" => PrimitiveKind::Write,
            "count" => PrimitiveKind::Count,
            "clear" => PrimitiveKind::Clear,
            "del" | "delete" => PrimitiveKind::Del,
            "drop" => PrimitiveKind::Drop,
            "fwd" | "forward" => PrimitiveKind::Forward,
            "back" => PrimitiveKind::Back,
            "mirror" => PrimitiveKind::Mirror,
            "multicast" => PrimitiveKind::Multicast,
            "copyto" | "copy" => PrimitiveKind::CopyTo,
            _ => return None,
        })
    }

    /// Whether the primitive has packet-level side effects.
    pub fn is_packet_primitive(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Drop
                | PrimitiveKind::Forward
                | PrimitiveKind::Back
                | PrimitiveKind::Mirror
                | PrimitiveKind::Multicast
                | PrimitiveKind::CopyTo
        )
    }
}

/// Python built-ins and ClickINC extensions supported in expressions
/// (paper Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinFn {
    /// `min(...)`
    Min,
    /// `max(...)`
    Max,
    /// `sum(...)`
    Sum,
    /// `abs(x)`
    Abs,
    /// `pow(x, y)`
    Pow,
    /// `round(x)`
    Round,
    /// `range(n)` — only valid as a loop iterator.
    Range,
    /// `len(x)`
    Len,
    /// `list()` constructor.
    List,
    /// `dict()` constructor.
    Dict,
    /// `ceil(x)` (ClickINC extension).
    Ceil,
    /// `floor(x)` (ClickINC extension).
    Floor,
    /// `sqrt(x)` (ClickINC extension).
    Sqrt,
    /// `randint(bound)` (ClickINC extension).
    RandInt,
    /// `slice(x, hi, lo)` (ClickINC extension).
    Slice,
}

impl BuiltinFn {
    /// Resolve a built-in function by name.
    pub fn from_name(name: &str) -> Option<BuiltinFn> {
        Some(match name {
            "min" => BuiltinFn::Min,
            "max" => BuiltinFn::Max,
            "sum" => BuiltinFn::Sum,
            "abs" => BuiltinFn::Abs,
            "pow" => BuiltinFn::Pow,
            "round" => BuiltinFn::Round,
            "range" => BuiltinFn::Range,
            "len" => BuiltinFn::Len,
            "list" => BuiltinFn::List,
            "dict" => BuiltinFn::Dict,
            "ceil" => BuiltinFn::Ceil,
            "floor" => BuiltinFn::Floor,
            "sqrt" => BuiltinFn::Sqrt,
            "randint" => BuiltinFn::RandInt,
            "slice" => BuiltinFn::Slice,
            _ => return None,
        })
    }
}

/// What a name resolves to in the module library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// An object constructor.
    Object(ObjectCtor),
    /// An INC primitive.
    Primitive(PrimitiveKind),
    /// A built-in function.
    Builtin(BuiltinFn),
    /// A provider template (resolved further by the template library).
    Template,
}

/// The module library: resolves names appearing in user programs to object
/// constructors, primitives, built-ins and templates.  Providers can register
/// additional template names (user-defined modules).
#[derive(Debug, Clone)]
pub struct ModuleLibrary {
    templates: BTreeMap<String, String>,
}

impl Default for ModuleLibrary {
    fn default() -> Self {
        let mut lib = ModuleLibrary { templates: BTreeMap::new() };
        // The provider templates shipped with ClickINC (paper §4.1 "Template").
        lib.register_template("MLAgg", "mlagg");
        lib.register_template("KVS", "kvs");
        lib.register_template("DQAcc", "dqacc");
        lib
    }
}

impl ModuleLibrary {
    /// Create the default library (built-ins + the provider templates).
    pub fn new() -> ModuleLibrary {
        ModuleLibrary::default()
    }

    /// Register a template name mapping to a template id.
    pub fn register_template(&mut self, name: impl Into<String>, template_id: impl Into<String>) {
        self.templates.insert(name.into(), template_id.into());
    }

    /// The template id registered under `name`, if any.
    pub fn template_id(&self, name: &str) -> Option<&str> {
        self.templates.get(name).map(String::as_str)
    }

    /// Resolve a bare name used in call position.
    pub fn resolve(&self, name: &str) -> Option<Resolution> {
        if let Some(ctor) = ObjectCtor::from_name(name) {
            return Some(Resolution::Object(ctor));
        }
        if let Some(prim) = PrimitiveKind::from_name(name) {
            return Some(Resolution::Primitive(prim));
        }
        if let Some(b) = BuiltinFn::from_name(name) {
            return Some(Resolution::Builtin(b));
        }
        if self.templates.contains_key(name) {
            return Some(Resolution::Template);
        }
        None
    }

    /// Names of all registered templates.
    pub fn template_names(&self) -> Vec<&str> {
        self.templates.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_constructors_resolve() {
        assert_eq!(ObjectCtor::from_name("Array"), Some(ObjectCtor::Array));
        assert_eq!(ObjectCtor::from_name("Sketch"), Some(ObjectCtor::Sketch));
        assert_eq!(ObjectCtor::from_name("array"), None, "constructors are capitalized");
        assert_eq!(ObjectCtor::Table.to_string(), "Table");
    }

    #[test]
    fn primitives_resolve_with_aliases() {
        assert_eq!(PrimitiveKind::from_name("get"), Some(PrimitiveKind::Get));
        assert_eq!(PrimitiveKind::from_name("read"), Some(PrimitiveKind::Get));
        assert_eq!(PrimitiveKind::from_name("fwd"), Some(PrimitiveKind::Forward));
        assert_eq!(PrimitiveKind::from_name("forward"), Some(PrimitiveKind::Forward));
        assert_eq!(PrimitiveKind::from_name("del"), Some(PrimitiveKind::Del));
        assert_eq!(PrimitiveKind::from_name("copyto"), Some(PrimitiveKind::CopyTo));
        assert_eq!(PrimitiveKind::from_name("nonsense"), None);
        assert!(PrimitiveKind::Drop.is_packet_primitive());
        assert!(!PrimitiveKind::Get.is_packet_primitive());
    }

    #[test]
    fn builtins_resolve() {
        assert_eq!(BuiltinFn::from_name("min"), Some(BuiltinFn::Min));
        assert_eq!(BuiltinFn::from_name("range"), Some(BuiltinFn::Range));
        assert_eq!(BuiltinFn::from_name("sqrt"), Some(BuiltinFn::Sqrt));
        assert_eq!(BuiltinFn::from_name("map"), None);
    }

    #[test]
    fn library_resolution_precedence() {
        let lib = ModuleLibrary::new();
        assert_eq!(lib.resolve("Array"), Some(Resolution::Object(ObjectCtor::Array)));
        assert_eq!(lib.resolve("count"), Some(Resolution::Primitive(PrimitiveKind::Count)));
        assert_eq!(lib.resolve("max"), Some(Resolution::Builtin(BuiltinFn::Max)));
        assert_eq!(lib.resolve("MLAgg"), Some(Resolution::Template));
        assert_eq!(lib.resolve("KVS"), Some(Resolution::Template));
        assert_eq!(lib.resolve("DQAcc"), Some(Resolution::Template));
        assert_eq!(lib.resolve("unknown_thing"), None);
    }

    #[test]
    fn user_defined_templates_can_be_registered() {
        let mut lib = ModuleLibrary::new();
        assert_eq!(lib.resolve("OPSketch"), None);
        lib.register_template("OPSketch", "opsketch");
        assert_eq!(lib.resolve("OPSketch"), Some(Resolution::Template));
        assert_eq!(lib.template_id("OPSketch"), Some("opsketch"));
        assert!(lib.template_names().contains(&"OPSketch"));
    }
}
