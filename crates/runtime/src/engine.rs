//! The traffic engine: shard threads, tenant/flow routing, bounded ingress
//! queues, and the control plane.
//!
//! [`TrafficEngine`] spawns one worker thread per shard and partitions
//! traffic across them — by a stable FNV hash of the tenant id
//! ([`ShardingMode::ByTenant`]) or of the per-packet flow key
//! ([`ShardingMode::ByFlow`], which installs the tenant on *every* shard so
//! one hot tenant can use every core).  All interaction goes through a
//! clonable [`EngineHandle`] — inject traffic, add/remove tenants while
//! other tenants' traffic keeps flowing, write control-plane table entries,
//! flush, snapshot telemetry.
//!
//! Ingress is *bounded*: each shard admits at most
//! [`EngineConfig::queue_capacity`] in-flight packets, and the configured
//! [`OverloadPolicy`] decides what happens beyond that — shed the excess at
//! the tail ([`OverloadPolicy::DropTail`]) or stall the injector until the
//! shard drains, up to a credit budget
//! ([`OverloadPolicy::Backpressure`]).  [`EngineHandle::inject`] reports
//! admitted/shed counts so open-loop drivers observe overload instead of
//! growing an invisible queue.  [`TrafficEngine::finish`] drains every
//! shard, merges the per-shard object stores back into the network-wide view
//! (additively for flow-partitioned state), and returns the final telemetry
//! report.

use crate::faults::{DeviceHealth, FaultInjector};
use crate::shard::{ShardFinal, ShardMsg, ShardWorker};
use crate::telemetry::{TelemetryRegistry, TelemetryReport, TenantCounters};
use crate::tenant::{ShardingMode, TenantHop};
use crate::workload::Workload;
use clickinc_emulator::{ExecMode, Fnv, ObjectStore, Packet};
use clickinc_ir::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Runtime-side failures: today these are all configuration errors caught
/// before any worker thread spawns.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// A sizing knob is below its documented minimum.
    InvalidConfig {
        /// The offending [`EngineConfig`] field.
        field: &'static str,
        /// The rejected value.
        value: usize,
        /// The smallest accepted value.
        minimum: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig { field, value, minimum } => {
                write!(f, "invalid engine config: `{field}` is {value}, minimum is {minimum}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// What a shard does when an injection would push its in-flight depth past
/// [`EngineConfig::queue_capacity`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Shed the excess packets at the tail immediately; the sheds are
    /// counted per tenant and reported back from [`EngineHandle::inject`].
    #[default]
    DropTail,
    /// Stall the injector until the shard drains, spending one credit per
    /// wait cycle; when the `credits` budget of one inject call is
    /// exhausted, the remainder is shed.  This is how `run_workload`
    /// throttles open-loop generators against a saturated shard.
    Backpressure {
        /// Wait cycles one inject call may spend per shard (≥ 1).
        credits: usize,
    },
}

/// Engine sizing knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Number of shard worker threads (≥ 1).
    pub shards: usize,
    /// Packets processed per device-queue batch (≥ 1).
    pub batch_size: usize,
    /// Per-shard bound on in-flight packets (≥ 1).  Injections beyond it are
    /// governed by `overload`.
    pub queue_capacity: usize,
    /// What happens when a shard's ingress queue is full.
    pub overload: OverloadPolicy,
    /// Which execution tier the shard workers' device planes run — the
    /// compiled register VM by default, the reference interpreter as the
    /// fallback (`--features interp-only` flips the default; both tiers are
    /// bit-identical, so this is a performance knob, not a semantic one).
    pub exec_mode: ExecMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            batch_size: 256,
            queue_capacity: 65_536,
            overload: OverloadPolicy::DropTail,
            exec_mode: ExecMode::default(),
        }
    }
}

impl EngineConfig {
    /// Check the sizing knobs: `shards`, `batch_size`, `queue_capacity` and
    /// the backpressure credit budget must all be at least 1, otherwise the
    /// worker-spawn, queue-drain and admission paths would be handed
    /// degenerate values.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.shards == 0 {
            return Err(EngineError::InvalidConfig { field: "shards", value: 0, minimum: 1 });
        }
        if self.batch_size == 0 {
            return Err(EngineError::InvalidConfig { field: "batch_size", value: 0, minimum: 1 });
        }
        if self.queue_capacity == 0 {
            return Err(EngineError::InvalidConfig {
                field: "queue_capacity",
                value: 0,
                minimum: 1,
            });
        }
        if let OverloadPolicy::Backpressure { credits: 0 } = self.overload {
            return Err(EngineError::InvalidConfig {
                field: "overload.credits",
                value: 0,
                minimum: 1,
            });
        }
        Ok(())
    }
}

/// Stable tenant → shard hash, independent of process and platform (the
/// emulator's [`Fnv`] digest modulo the shard count).
fn shard_of(tenant: &str, shards: usize) -> usize {
    let mut h = Fnv::new();
    h.write_str(tenant);
    (h.finish() % shards.max(1) as u64) as usize
}

/// Mix a [`Value`] into a digest with a per-variant tag so distinct variants
/// never collide.
fn write_value(h: &mut Fnv, value: &Value) {
    match value {
        Value::Int(i) => {
            h.write_u64(1);
            h.write_u64(*i as u64);
        }
        Value::Float(f) => {
            h.write_u64(2);
            h.write_u64(f.to_bits());
        }
        Value::Bool(b) => {
            h.write_u64(3);
            h.write_u64(u64::from(*b));
        }
        Value::Bytes(bytes) => {
            h.write_u64(4);
            h.write_u64(bytes.len() as u64);
            for b in bytes {
                h.write_u64(u64::from(*b));
            }
        }
        Value::None => h.write_u64(5),
    }
}

/// Stable per-packet flow → shard hash for [`ShardingMode::ByFlow`] tenants:
/// the named key fields' values (or the full flow identity when no fields
/// are named), salted with the tenant id so two tenants' identical flows
/// don't correlate.
fn flow_shard_of(tenant: &str, packet: &Packet, key_fields: &[String], shards: usize) -> usize {
    let mut h = Fnv::new();
    h.write_str(tenant);
    if key_fields.is_empty() {
        h.write_str(&packet.src);
        h.write_str(&packet.dst);
        for (name, value) in &packet.inc.fields {
            h.write_str(name);
            write_value(&mut h, value);
        }
    } else {
        for field in key_fields {
            write_value(&mut h, &packet.inc.get(field));
        }
    }
    (h.finish() % shards.max(1) as u64) as usize
}

/// Admission outcome of one [`EngineHandle::inject`] call (or one workload
/// drive): how many packets the bounded ingress queues accepted and how many
/// were shed under overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectOutcome {
    /// Packets admitted into shard queues.
    pub admitted: usize,
    /// Packets refused (drop-tail overflow or backpressure credit
    /// exhaustion), counted per tenant in the telemetry as `shed_packets`.
    pub shed: usize,
}

impl InjectOutcome {
    fn absorb(&mut self, other: InjectOutcome) {
        self.admitted += other.admitted;
        self.shed += other.shed;
    }
}

/// What [`EngineHandle::run_workload`] hands back: generator progress plus
/// the aggregate admission outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkloadReport {
    /// Packets pulled from the generator.
    pub generated: usize,
    /// Packets the shards admitted.
    pub admitted: usize,
    /// Packets shed under overload.
    pub shed: usize,
}

/// How a registered tenant's packets are routed: its sharding mode plus the
/// per-shard counter blocks (one for `ByTenant`, one per shard for
/// `ByFlow`).
#[derive(Clone)]
struct TenantRoute {
    mode: ShardingMode,
    /// Home shard for `ByTenant`; unused for `ByFlow`.
    home: usize,
    /// The tenant's hop list, kept so a live reshard can re-install the
    /// program under the new mode.
    hops: Vec<TenantHop>,
    /// Counter blocks indexed like the shards they live on: `ByTenant` has a
    /// single block (the home shard's), `ByFlow` one per shard.
    counters: Vec<Arc<TenantCounters>>,
    /// Per-tenant ingress credit budget: the max packets the tenant may have
    /// in flight across all shards.  Defaults to `shards × queue_capacity`
    /// (the engine-wide aggregate bound, i.e. non-binding); the adaptive
    /// runtime tightens it to a weighted fair share under contention.
    /// Shared across route generations so a reshard preserves the budget.
    budget: Arc<AtomicU64>,
}

impl TenantRoute {
    fn counters_for(&self, shard: usize) -> Option<&Arc<TenantCounters>> {
        match self.mode {
            ShardingMode::ByTenant => self.counters.first(),
            ShardingMode::ByFlow { .. } => self.counters.get(shard),
        }
    }

    /// Packets of this tenant currently in flight, summed across its shard
    /// blocks.
    fn in_flight(&self) -> u64 {
        self.counters.iter().map(|c| c.in_flight.load(Ordering::Relaxed)).sum()
    }
}

/// State shared by every [`EngineHandle`] clone.
struct EngineShared {
    senders: Vec<Sender<ShardMsg>>,
    registry: Arc<TelemetryRegistry>,
    /// Per-shard in-flight packet gauges (incremented at admission,
    /// decremented by the worker at terminal outcomes).
    depths: Vec<Arc<AtomicU64>>,
    queue_capacity: usize,
    overload: OverloadPolicy,
    /// Tenant → routing decision.  Locked per inject *batch*, never per
    /// packet.
    routes: Mutex<BTreeMap<String, TenantRoute>>,
    /// Names of stateful objects belonging to *live* flow-sharded tenants:
    /// their per-shard partitions are merged additively at
    /// [`TrafficEngine::finish`] instead of first-copy-wins.  Keyed by
    /// tenant so removal prunes exactly that tenant's (isolation-renamed,
    /// hence unique) names.
    flow_objects: Mutex<BTreeMap<String, Vec<String>>>,
    /// Per-tenant, per-device replica baselines seeded by a live reshard to
    /// `ByFlow`: every shard received a full copy of the tenant's
    /// pre-reshard state (so flow-keyed *reads* still see history), which
    /// the final additive cross-shard merge counts once per shard.
    /// [`TrafficEngine::finish`] (and the next reshard's extraction) deducts
    /// `shards - 1` copies to restore the exact unsharded state.
    reshard_baselines: Mutex<BTreeMap<String, BTreeMap<String, ObjectStore>>>,
    /// Injected device faults currently in effect (sparse: healthy devices
    /// are absent).  The authoritative copy lives in the shard workers; this
    /// mirror lets control loops ask which devices are down without a
    /// shard round-trip.
    device_health: Mutex<BTreeMap<String, DeviceHealth>>,
}

/// Clonable, `Send` front door to a running engine.  Everything the control
/// plane and the workload drivers need — including the controller bridge —
/// goes through this handle.
#[derive(Clone)]
pub struct EngineHandle {
    shared: Arc<EngineShared>,
}

impl EngineHandle {
    /// Register a tenant with the default [`ShardingMode::ByTenant`]: its
    /// traffic route and per-device snippets are installed on the owning
    /// shard's plane replicas.  Traffic injected after this call (the
    /// channel is FIFO) sees the program.
    pub fn add_tenant(&self, user: &str, hops: Vec<TenantHop>) {
        self.add_tenant_sharded(user, hops, ShardingMode::ByTenant);
    }

    /// Register a tenant with an explicit [`ShardingMode`].  `ByTenant`
    /// installs on the single owning shard; `ByFlow` installs the program on
    /// *every* shard (each with its own telemetry counter block) and later
    /// spreads the tenant's packets by the stable flow hash.
    ///
    /// Passing `ByFlow` asserts the program's inter-packet state is safe to
    /// partition by the key fields: every stateful access keyed by them and
    /// every mutation commutatively mergeable (counter adds, idempotent
    /// Bloom sets) or control-plane replicated.  The `clickinc` service
    /// derives the mode from a conservative state-profile analysis instead
    /// of trusting the caller.
    pub fn add_tenant_sharded(&self, user: &str, hops: Vec<TenantHop>, mode: ShardingMode) {
        let shards = self.shared.senders.len();
        let budget =
            Arc::new(AtomicU64::new((self.shared.queue_capacity.saturating_mul(shards)) as u64));
        let route = self.install_route(user, hops, mode, budget);
        self.shared.routes.lock().expect("routes").insert(user.to_string(), route);
    }

    /// The single tenant-install path shared by [`add_tenant_sharded`] and
    /// the live-reshard path: register counter blocks, install the program
    /// on the hosting shard(s), maintain the flow-object registry, and stamp
    /// the telemetry metadata.  Does *not* touch the route table — callers
    /// insert the returned route under whatever locking discipline they
    /// need.
    ///
    /// [`add_tenant_sharded`]: EngineHandle::add_tenant_sharded
    fn install_route(
        &self,
        user: &str,
        hops: Vec<TenantHop>,
        mode: ShardingMode,
        budget: Arc<AtomicU64>,
    ) -> TenantRoute {
        let shards = self.shared.senders.len();
        let route = match &mode {
            ShardingMode::ByTenant => {
                self.shared.flow_objects.lock().expect("flow objects").remove(user);
                let counters = Arc::new(TenantCounters::new(hops.len()));
                self.shared.registry.register(user, Arc::clone(&counters));
                let home = shard_of(user, shards);
                let _ = self.shared.senders[home].send(ShardMsg::AddTenant {
                    user: user.to_string(),
                    hops: hops.clone(),
                    counters: Arc::clone(&counters),
                });
                TenantRoute { mode, home, hops, counters: vec![counters], budget }
            }
            ShardingMode::ByFlow { .. } => {
                {
                    let names: Vec<String> = hops
                        .iter()
                        .flat_map(|hop| hop.snippets.iter())
                        .flat_map(|snippet| snippet.objects.iter())
                        .map(|object| object.name.clone())
                        .collect();
                    let mut flow_objects = self.shared.flow_objects.lock().expect("flow objects");
                    flow_objects.insert(user.to_string(), names);
                }
                let mut counters = Vec::with_capacity(shards);
                for sender in &self.shared.senders {
                    let block = Arc::new(TenantCounters::new(hops.len()));
                    self.shared.registry.register(user, Arc::clone(&block));
                    let _ = sender.send(ShardMsg::AddTenant {
                        user: user.to_string(),
                        hops: hops.clone(),
                        counters: Arc::clone(&block),
                    });
                    counters.push(block);
                }
                TenantRoute { mode, home: 0, hops, counters, budget }
            }
        };
        self.shared.registry.set_meta(
            user,
            route.mode.label(),
            route.budget.load(Ordering::Relaxed),
        );
        route
    }

    /// Live-reshard a tenant between [`ShardingMode::ByTenant`] and
    /// [`ShardingMode::ByFlow`] while co-resident tenants keep flowing.
    /// Returns `false` (and does nothing) if the tenant is unknown or
    /// already in `mode`.
    ///
    /// The protocol rides the FIFO control/traffic channels, so no explicit
    /// barrier is needed:
    ///
    /// 1. **Quiesce + extract** — every hosting shard drains the tenant's
    ///    queued traffic, uninstalls its snippets and ships back its
    ///    exclusively-owned state ([`ShardMsg::ExtractTenant`]).
    /// 2. **Reconcile** — the per-shard partials merge additively
    ///    (`merge_shard_from`); if a previous reshard had replicated a
    ///    baseline onto every shard, `shards − 1` copies are deducted so the
    ///    merged store equals the exact unsharded state.
    /// 3. **Re-install** — the same install path `add_tenant` uses puts the
    ///    program on the new mode's shard(s) with fresh counter blocks (the
    ///    registry keeps the old blocks, so telemetry totals stay
    ///    continuous).
    /// 4. **Seed** — the merged state is sent to every new hosting shard.
    ///    For `ByFlow` that is a *full replica* per shard — flow-keyed reads
    ///    must see pre-reshard history — and the replica baseline is
    ///    recorded so the final merge can deduct the duplication again.
    ///
    /// The route lock is held for the whole protocol: injections for *this*
    /// tenant that race the reshard wait at the lock and then route under
    /// the new mode.  Like [`add_tenant_sharded`], this trusts the caller
    /// that `ByFlow` is sound for the program; the `clickinc` service layer
    /// derives eligibility from its state-profile analysis
    /// (`sharding_mode_for`) and never flow-shards an ineligible tenant.
    ///
    /// [`add_tenant_sharded`]: EngineHandle::add_tenant_sharded
    pub fn reshard_tenant(&self, user: &str, mode: ShardingMode) -> bool {
        let mut routes = self.shared.routes.lock().expect("routes");
        let Some(old) = routes.get(user) else { return false };
        if old.mode == mode {
            return false;
        }
        let shards = self.shared.senders.len();
        let hops = old.hops.clone();
        let budget = Arc::clone(&old.budget);
        let hosting: Vec<usize> = match old.mode {
            ShardingMode::ByTenant => vec![old.home],
            ShardingMode::ByFlow { .. } => (0..shards).collect(),
        };
        // 1. quiesce + extract on every hosting shard
        let acks: Vec<_> = hosting
            .iter()
            .map(|&shard| {
                let (tx, rx) = channel();
                let _ = self.shared.senders[shard]
                    .send(ShardMsg::ExtractTenant { user: user.to_string(), ack: tx });
                rx
            })
            .collect();
        let mut merged: BTreeMap<String, ObjectStore> = BTreeMap::new();
        for rx in acks {
            let Ok(per_device) = rx.recv() else { continue };
            for (device, store) in per_device {
                merged.entry(device).or_default().merge_shard_from(&store, |_| true);
            }
        }
        // 2. deduct the replica baseline a previous reshard seeded
        {
            let mut baselines = self.shared.reshard_baselines.lock().expect("baselines");
            if let Some(prior) = baselines.remove(user) {
                for (device, store) in merged.iter_mut() {
                    if let Some(base) = prior.get(device) {
                        store.subtract_replica_baseline(base, (shards - 1) as u64);
                    }
                }
            }
        }
        // 3. re-install under the new mode (flow-object registry and
        //    telemetry metadata update inside)
        let route = self.install_route(user, hops, mode, budget);
        // 4. seed the reconciled state onto the new hosting shard(s)
        match &route.mode {
            ShardingMode::ByFlow { .. } => {
                for sender in &self.shared.senders {
                    for (device, store) in &merged {
                        let _ = sender.send(ShardMsg::SeedState {
                            device: device.clone(),
                            store: store.clone(),
                        });
                    }
                }
                if shards > 1 && !merged.is_empty() {
                    self.shared
                        .reshard_baselines
                        .lock()
                        .expect("baselines")
                        .insert(user.to_string(), merged);
                }
            }
            ShardingMode::ByTenant => {
                let home = route.home;
                for (device, store) in merged {
                    let _ = self.shared.senders[home].send(ShardMsg::SeedState { device, store });
                }
            }
        }
        routes.insert(user.to_string(), route);
        true
    }

    /// Resize a tenant's ingress credit budget (max in-flight packets across
    /// shards, clamped to ≥ 1).  Takes effect on the next injection; the
    /// telemetry metadata is updated so snapshots export the new budget.
    /// Returns `false` for unknown tenants.
    pub fn set_tenant_budget(&self, user: &str, budget: u64) -> bool {
        let routes = self.shared.routes.lock().expect("routes");
        let Some(route) = routes.get(user) else { return false };
        route.budget.store(budget.max(1), Ordering::Relaxed);
        self.shared.registry.set_meta(user, route.mode.label(), budget.max(1));
        true
    }

    /// A tenant's current ingress credit budget, if registered.
    pub fn tenant_budget(&self, user: &str) -> Option<u64> {
        let routes = self.shared.routes.lock().expect("routes");
        routes.get(user).map(|r| r.budget.load(Ordering::Relaxed))
    }

    /// A tenant's active sharding mode, if registered.
    pub fn sharding_mode(&self, user: &str) -> Option<ShardingMode> {
        let routes = self.shared.routes.lock().expect("routes");
        routes.get(user).map(|r| r.mode.clone())
    }

    /// Number of shard worker threads.
    pub fn shards(&self) -> usize {
        self.shared.senders.len()
    }

    /// The per-shard bound on in-flight packets.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_capacity
    }

    /// Remove a tenant.  Every shard hosting it quiesces the tenant's queued
    /// traffic first (FIFO channel), then drops only its snippets and
    /// exclusively-owned tables; co-resident tenants keep flowing untouched.
    /// A flow-sharded tenant is quiesced on every shard.
    pub fn remove_tenant(&self, user: &str) {
        let route = self.shared.routes.lock().expect("routes").remove(user);
        match route.map(|r| r.mode) {
            Some(ShardingMode::ByFlow { .. }) => {
                // the tenant's planes (and objects) are uninstalled on every
                // shard, so its names must stop counting as flow-partitioned
                self.shared.flow_objects.lock().expect("flow objects").remove(user);
                for sender in self.shared.senders.iter() {
                    let _ = sender.send(ShardMsg::RemoveTenant { user: user.to_string() });
                }
            }
            _ => {
                let shard = shard_of(user, self.shared.senders.len());
                let _ = self.shared.senders[shard]
                    .send(ShardMsg::RemoveTenant { user: user.to_string() });
            }
        }
    }

    /// Inject a batch of `(virtual arrival ns, packet)` pairs for a tenant,
    /// in stream order, against the bounded ingress queues.  Returns how
    /// many packets were admitted and how many were shed under the
    /// configured [`OverloadPolicy`]; per-flow order is preserved for
    /// flow-sharded tenants (the partition is a stable hash, and each
    /// shard's channel is FIFO).
    pub fn inject(&self, tenant: &Arc<str>, jobs: Vec<(u64, Packet)>) -> InjectOutcome {
        if jobs.is_empty() {
            return InjectOutcome::default();
        }
        let route = self.shared.routes.lock().expect("routes").get(tenant.as_ref()).cloned();
        let mut outcome = InjectOutcome::default();
        match route {
            Some(ref route @ TenantRoute { mode: ShardingMode::ByTenant, .. }) => {
                outcome.absorb(self.admit(
                    route.home,
                    tenant,
                    jobs,
                    route.counters_for(route.home),
                    Some(route),
                ));
            }
            Some(ref route) => {
                let key_fields = match &route.mode {
                    ShardingMode::ByFlow { key_fields } => key_fields.clone(),
                    ShardingMode::ByTenant => unreachable!("matched above"),
                };
                let shards = self.shared.senders.len();
                let mut partitions: Vec<Vec<(u64, Packet)>> = vec![Vec::new(); shards];
                for (vtime, packet) in jobs {
                    let shard = flow_shard_of(tenant, &packet, &key_fields, shards);
                    partitions[shard].push((vtime, packet));
                }
                for (shard, part) in partitions.into_iter().enumerate() {
                    if part.is_empty() {
                        continue;
                    }
                    outcome.absorb(self.admit(
                        shard,
                        tenant,
                        part,
                        route.counters_for(shard),
                        Some(route),
                    ));
                }
            }
            None => {
                // unknown tenant (never added, or already removed): keep the
                // legacy behaviour — route by tenant hash, let the shard drop
                // silently.  Still admitted against the queue bound so a
                // misdirected firehose cannot grow the channel unboundedly.
                let shard = shard_of(tenant, self.shared.senders.len());
                outcome.absorb(self.admit(shard, tenant, jobs, None, None));
            }
        }
        outcome
    }

    /// Admit as much of `jobs` as the shard's bounded queue *and* the
    /// tenant's ingress credit budget allow, applying the overload policy to
    /// the remainder.  Order-preserving.
    fn admit(
        &self,
        shard: usize,
        tenant: &Arc<str>,
        mut jobs: Vec<(u64, Packet)>,
        counters: Option<&Arc<TenantCounters>>,
        route: Option<&TenantRoute>,
    ) -> InjectOutcome {
        let depth = &self.shared.depths[shard];
        let capacity = self.shared.queue_capacity;
        let mut outcome = InjectOutcome::default();
        let mut credits = match self.shared.overload {
            OverloadPolicy::DropTail => 0usize,
            OverloadPolicy::Backpressure { credits } => credits,
        };
        loop {
            // re-read each cycle: the budget may be resized live, and the
            // tenant's in-flight count drains between backpressure waits
            let tenant_room = route
                .map(|r| {
                    let budget = r.budget.load(Ordering::Relaxed);
                    usize::try_from(budget.saturating_sub(r.in_flight())).unwrap_or(usize::MAX)
                })
                .unwrap_or(usize::MAX);
            // reserve room below the bound atomically: concurrent handle
            // clones race on the same gauge, and a load-then-add would let
            // two injectors admit past `queue_capacity` together
            let want = jobs.len().min(tenant_room);
            let mut take = 0usize;
            let reserved = depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |current| {
                take = want.min(capacity.saturating_sub(current as usize));
                if take == 0 {
                    None
                } else {
                    Some(current + take as u64)
                }
            });
            if let Ok(current) = reserved {
                let admitted: Vec<(u64, Packet)> = jobs.drain(..take).collect();
                if let Some(counters) = counters {
                    counters.queue_depth_hwm.fetch_max(current + take as u64, Ordering::Relaxed);
                    counters.in_flight.fetch_add(take as u64, Ordering::Relaxed);
                }
                let _ = self.shared.senders[shard]
                    .send(ShardMsg::Inject { user: Arc::clone(tenant), jobs: admitted });
                outcome.admitted += take;
            }
            if jobs.is_empty() {
                break;
            }
            if credits == 0 {
                // drop-tail, or a backpressured injector out of credits:
                // shed the rest and surface it
                if let Some(counters) = counters {
                    counters.shed.fetch_add(jobs.len() as u64, Ordering::Relaxed);
                }
                outcome.shed += jobs.len();
                break;
            }
            // backpressure: spend a credit waiting for the shard to drain
            // (the flush barrier returns once everything queued ahead of it —
            // including our own admissions — reached a terminal outcome)
            credits -= 1;
            if let Some(counters) = counters {
                counters.backpressure_waits.fetch_add(1, Ordering::Relaxed);
            }
            let (tx, rx) = channel();
            let _ = self.shared.senders[shard].send(ShardMsg::Flush(tx));
            let _ = rx.recv();
        }
        outcome
    }

    /// Control-plane table write on the shard replica(s) that own `tenant` —
    /// the single home shard for a `ByTenant` tenant, every shard for a
    /// flow-sharded tenant (whose planes are replicas).
    pub fn populate_table(
        &self,
        tenant: &str,
        device: &str,
        table: &str,
        key: Vec<Value>,
        value: Vec<Value>,
    ) {
        let by_flow = {
            let routes = self.shared.routes.lock().expect("routes");
            routes.get(tenant).map(|r| r.mode.is_by_flow()).unwrap_or(false)
        };
        let targets: Vec<usize> = if by_flow {
            (0..self.shared.senders.len()).collect()
        } else {
            vec![shard_of(tenant, self.shared.senders.len())]
        };
        for shard in targets {
            let _ = self.shared.senders[shard].send(ShardMsg::TableWrite {
                device: device.to_string(),
                table: table.to_string(),
                key: key.clone(),
                value: value.clone(),
            });
        }
    }

    /// Drain a workload into the engine: packets are pulled from the
    /// generator, grouped per tenant into `inject_batch`-sized batches, and
    /// sent to the owning shards in stream order against the bounded ingress
    /// queues.  Under [`OverloadPolicy::Backpressure`] the injection itself
    /// stalls the (open-loop) generator whenever a shard saturates, spending
    /// credits; under [`OverloadPolicy::DropTail`] the excess is shed.
    /// Stops after `max_packets` (or when the workload is exhausted) and
    /// returns the generated/admitted/shed totals.
    pub fn run_workload(
        &self,
        workload: &mut dyn Workload,
        max_packets: usize,
        inject_batch: usize,
    ) -> WorkloadReport {
        let inject_batch = inject_batch.max(1);
        let mut buffers: BTreeMap<Arc<str>, Vec<(u64, Packet)>> = BTreeMap::new();
        let mut report = WorkloadReport::default();
        while report.generated < max_packets {
            let Some(generated) = workload.next_packet() else { break };
            report.generated += 1;
            let buffer = buffers.entry(Arc::clone(&generated.tenant)).or_default();
            buffer.push((generated.vtime_ns, generated.packet));
            if buffer.len() >= inject_batch {
                let jobs = std::mem::take(buffer);
                let outcome = self.inject(&generated.tenant, jobs);
                report.admitted += outcome.admitted;
                report.shed += outcome.shed;
            }
        }
        for (tenant, jobs) in buffers {
            let outcome = self.inject(&tenant, jobs);
            report.admitted += outcome.admitted;
            report.shed += outcome.shed;
        }
        report
    }

    /// Apply a device fault (or restore) on every shard: `Down` devices lose
    /// all traffic reaching them, `Flaky` ones drop a deterministic
    /// fraction, `Degraded` ones scale their latency; `Up` clears the fault.
    /// Rides the FIFO channels, so traffic injected before this call is
    /// processed under the old health, traffic after under the new.
    pub fn set_device_health(&self, device: &str, health: DeviceHealth) {
        {
            let mut map = self.shared.device_health.lock().expect("device health");
            if health == DeviceHealth::Up {
                map.remove(device);
            } else {
                map.insert(device.to_string(), health);
            }
        }
        for sender in &self.shared.senders {
            let _ = sender.send(ShardMsg::SetDeviceHealth { device: device.to_string(), health });
        }
    }

    /// A device's currently injected health ([`DeviceHealth::Up`] when no
    /// fault is in effect).
    pub fn device_health(&self, device: &str) -> DeviceHealth {
        self.shared
            .device_health
            .lock()
            .expect("device health")
            .get(device)
            .copied()
            .unwrap_or_default()
    }

    /// Names of all devices currently taken fully down by a fault.
    pub fn down_devices(&self) -> Vec<String> {
        self.shared
            .device_health
            .lock()
            .expect("device health")
            .iter()
            .filter(|(_, h)| !h.is_serving())
            .map(|(d, _)| d.clone())
            .collect()
    }

    /// [`run_workload`](EngineHandle::run_workload) with a [`FaultInjector`]
    /// riding the workload's virtual clock: before each generated packet,
    /// any fault event scheduled at or before the packet's arrival time is
    /// applied.  Buffered injections are drained and every shard flushed
    /// first, so each event lands at a deterministic point in the packet
    /// stream — the fault's blast radius is a pure function of (workload
    /// seed, fault plan), independent of thread timing.  Events scheduled
    /// beyond the last generated packet stay pending.
    pub fn run_workload_with_faults(
        &self,
        workload: &mut dyn Workload,
        max_packets: usize,
        inject_batch: usize,
        injector: &mut FaultInjector,
    ) -> WorkloadReport {
        let inject_batch = inject_batch.max(1);
        let mut buffers: BTreeMap<Arc<str>, Vec<(u64, Packet)>> = BTreeMap::new();
        let mut report = WorkloadReport::default();
        while report.generated < max_packets {
            let Some(generated) = workload.next_packet() else { break };
            let fault_due = injector
                .pending()
                .first()
                .is_some_and(|event| event.at_vtime_ns <= generated.vtime_ns);
            if fault_due {
                for (tenant, jobs) in std::mem::take(&mut buffers) {
                    let outcome = self.inject(&tenant, jobs);
                    report.admitted += outcome.admitted;
                    report.shed += outcome.shed;
                }
                self.flush();
                for event in injector.due(generated.vtime_ns) {
                    self.set_device_health(&event.device, event.kind.health());
                }
            }
            report.generated += 1;
            let buffer = buffers.entry(Arc::clone(&generated.tenant)).or_default();
            buffer.push((generated.vtime_ns, generated.packet));
            if buffer.len() >= inject_batch {
                let jobs = std::mem::take(buffer);
                let outcome = self.inject(&generated.tenant, jobs);
                report.admitted += outcome.admitted;
                report.shed += outcome.shed;
            }
        }
        for (tenant, jobs) in buffers {
            let outcome = self.inject(&tenant, jobs);
            report.admitted += outcome.admitted;
            report.shed += outcome.shed;
        }
        report
    }

    /// Barrier: returns once every shard has drained its queues.
    pub fn flush(&self) {
        let acks: Vec<_> = self
            .shared
            .senders
            .iter()
            .map(|s| {
                let (tx, rx) = channel();
                let _ = s.send(ShardMsg::Flush(tx));
                rx
            })
            .collect();
        for rx in acks {
            let _ = rx.recv();
        }
    }

    /// Merge the per-shard counters into a per-tenant telemetry report.
    /// Cheap and safe to call while traffic flows; exact after a flush.
    pub fn telemetry(&self) -> TelemetryReport {
        self.shared.registry.snapshot()
    }
}

/// Everything a finished run leaves behind.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final merged telemetry.
    pub telemetry: TelemetryReport,
    /// Final object stores per device, merged across shards.  Tenant
    /// isolation makes per-shard stores disjoint for `ByTenant` tenants, so
    /// their union equals the store an unsharded run would produce;
    /// flow-sharded tenants' state partitions are merged additively
    /// (counters sum, Bloom rows OR, table entries union), which
    /// reconstructs the unsharded store exactly for flow-keyed state.
    pub stores: BTreeMap<String, ObjectStore>,
}

/// The sharded, batched traffic engine.
pub struct TrafficEngine {
    handle: EngineHandle,
    workers: Vec<JoinHandle<()>>,
}

impl TrafficEngine {
    /// Spawn `config.shards` worker threads, rejecting degenerate configs
    /// with a typed [`EngineError`] instead of clamping.
    pub fn try_new(config: EngineConfig) -> Result<TrafficEngine, EngineError> {
        config.validate()?;
        Ok(TrafficEngine::new(config))
    }

    /// Spawn `config.shards` worker threads.  `shards`, `batch_size`,
    /// `queue_capacity` and the backpressure credits are clamped to their
    /// documented minimum of 1; use [`TrafficEngine::try_new`] to reject
    /// such configs instead.
    pub fn new(config: EngineConfig) -> TrafficEngine {
        let shards = config.shards.max(1);
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        let mut depths = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel::<ShardMsg>();
            let batch = config.batch_size;
            let depth = Arc::new(AtomicU64::new(0));
            let exec_mode = config.exec_mode;
            senders.push(tx);
            depths.push(Arc::clone(&depth));
            workers.push(std::thread::spawn(move || ShardWorker::run(rx, batch, depth, exec_mode)));
        }
        let overload = match config.overload {
            OverloadPolicy::Backpressure { credits } => {
                OverloadPolicy::Backpressure { credits: credits.max(1) }
            }
            policy => policy,
        };
        TrafficEngine {
            handle: EngineHandle {
                shared: Arc::new(EngineShared {
                    senders,
                    registry: Arc::new(TelemetryRegistry::default()),
                    depths,
                    queue_capacity: config.queue_capacity.max(1),
                    overload,
                    routes: Mutex::new(BTreeMap::new()),
                    flow_objects: Mutex::new(BTreeMap::new()),
                    reshard_baselines: Mutex::new(BTreeMap::new()),
                    device_health: Mutex::new(BTreeMap::new()),
                }),
            },
            workers,
        }
    }

    /// A clonable handle for drivers, the controller bridge, and observers.
    pub fn handle(&self) -> EngineHandle {
        self.handle.clone()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.handle.shared.senders.len()
    }

    /// Stop every shard, merge their final stores, and return the outcome.
    pub fn finish(self) -> RunOutcome {
        let finals: Vec<ShardFinal> = self
            .handle
            .shared
            .senders
            .iter()
            .map(|s| {
                let (tx, rx) = channel();
                let _ = s.send(ShardMsg::Stop(tx));
                rx
            })
            .collect::<Vec<_>>()
            .into_iter()
            .filter_map(|rx| rx.recv().ok())
            .collect();
        for worker in self.workers {
            let _ = worker.join();
        }
        let flow_objects: BTreeSet<String> = self
            .handle
            .shared
            .flow_objects
            .lock()
            .expect("flow objects")
            .values()
            .flatten()
            .cloned()
            .collect();
        let mut stores: BTreeMap<String, ObjectStore> = BTreeMap::new();
        for shard_final in finals {
            for (device, plane) in shard_final.planes {
                stores
                    .entry(device)
                    .or_default()
                    .merge_shard_from(plane.store(), |name| flow_objects.contains(name));
            }
        }
        // a live reshard to ByFlow seeded every shard with a full copy of
        // the tenant's pre-reshard state; the additive merge above counted
        // that baseline once per shard, so deduct the extra copies to
        // restore the exact unsharded state
        let shards = self.handle.shared.senders.len();
        let baselines =
            std::mem::take(&mut *self.handle.shared.reshard_baselines.lock().expect("baselines"));
        for devices in baselines.into_values() {
            for (device, base) in devices {
                if let Some(store) = stores.get_mut(&device) {
                    store.subtract_replica_baseline(&base, (shards - 1) as u64);
                }
            }
        }
        RunOutcome { telemetry: self.handle.telemetry(), stores }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_every_degenerate_knob() {
        assert!(EngineConfig::default().validate().is_ok());
        let reject = |config: EngineConfig, field: &str| {
            match config.validate().unwrap_err() {
                EngineError::InvalidConfig { field: f, value, minimum } => {
                    assert_eq!(f, field);
                    assert_eq!(value, 0);
                    assert_eq!(minimum, 1);
                }
            };
        };
        reject(EngineConfig { shards: 0, ..Default::default() }, "shards");
        reject(EngineConfig { batch_size: 0, ..Default::default() }, "batch_size");
        reject(EngineConfig { queue_capacity: 0, ..Default::default() }, "queue_capacity");
        reject(
            EngineConfig {
                overload: OverloadPolicy::Backpressure { credits: 0 },
                ..Default::default()
            },
            "overload.credits",
        );
        // a non-zero credit budget passes
        assert!(EngineConfig {
            overload: OverloadPolicy::Backpressure { credits: 8 },
            ..Default::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn flow_hash_is_stable_and_keyed() {
        let mut fields = BTreeMap::new();
        fields.insert("key".to_string(), Value::Int(7));
        fields.insert("op".to_string(), Value::Int(1));
        let a = Packet::new("client", "server", 1, fields.clone());
        let key_fields = vec!["key".to_string()];
        let s1 = flow_shard_of("t", &a, &key_fields, 8);
        let s2 = flow_shard_of("t", &a, &key_fields, 8);
        assert_eq!(s1, s2, "deterministic");
        // a packet differing only in a non-key field lands on the same shard
        fields.insert("op".to_string(), Value::Int(2));
        let b = Packet::new("client", "server", 1, fields.clone());
        assert_eq!(s1, flow_shard_of("t", &b, &key_fields, 8));
        // with the full-flow key, it may differ; with a different key it
        // spreads: over many keys more than one shard is hit
        let mut shards_hit = std::collections::BTreeSet::new();
        for key in 0..64 {
            let mut f = BTreeMap::new();
            f.insert("key".to_string(), Value::Int(key));
            let p = Packet::new("client", "server", 1, f);
            shards_hit.insert(flow_shard_of("t", &p, &key_fields, 8));
        }
        assert!(shards_hit.len() > 1, "keys spread across shards");
    }
}
