//! Block DAG construction (paper §5.2, Algorithm 3).

use crate::dag::{Block, BlockDag, BlockId};
use clickinc_ir::{classify_instruction, CapabilityClass, DependencyKind, IrProgram, ReadWriteSet};
use std::collections::BTreeSet;

/// Configuration of the block construction.
#[derive(Debug, Clone)]
pub struct BlockConfig {
    /// Maximum number of instructions per block ("a block's size should be
    /// limited by a threshold parameter decided by the device capability").
    pub max_block_instrs: usize,
    /// Whether to run the optional Kahn-partition merging (step 3).  Disabling
    /// it keeps one block per mandatory state-sharing group — the "w/o-block"
    /// ablation of Fig. 14.
    pub enable_merging: bool,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig { max_block_instrs: 16, enable_merging: true }
    }
}

/// Build the block DAG for an IR program.
pub fn build_block_dag(program: &IrProgram, config: &BlockConfig) -> BlockDag {
    let n = program.len();
    if n == 0 {
        return BlockDag::new(Vec::new(), Vec::new());
    }
    let deps = program.dependencies();

    // --- step 1 & 2: instruction graph, then collapse cycles (SCCs) ----------
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b, _) in &deps {
        succ[*a].push(*b);
    }
    let scc_of = tarjan_scc(n, &succ);
    let n_groups = scc_of.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (instr, &g) in scc_of.iter().enumerate() {
        groups[g].push(instr);
    }
    for g in &mut groups {
        g.sort_unstable();
    }
    // order groups by their first instruction so block ids follow program order
    let mut group_order: Vec<usize> = (0..n_groups).collect();
    group_order.sort_by_key(|&g| groups[g].first().copied().unwrap_or(usize::MAX));
    let mut group_rank = vec![0usize; n_groups];
    for (rank, &g) in group_order.iter().enumerate() {
        group_rank[g] = rank;
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (g, instrs) in groups.into_iter().enumerate() {
        members[group_rank[g]] = instrs;
    }
    // group-level edges (data edges only across groups; state edges are intra-group
    // by construction of the SCCs, but keep any residual cross-group ones too)
    let mut gedges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (a, b, kind) in &deps {
        let (ga, gb) = (group_rank[scc_of[*a]], group_rank[scc_of[*b]]);
        if ga != gb {
            // a cross-group state edge would indicate a bug in SCC contraction;
            // treat it as a data edge in the forward direction to stay acyclic.
            let _ = kind;
            if members[ga].first() < members[gb].first() {
                gedges.insert((ga, gb));
            } else {
                gedges.insert((gb, ga));
            }
        }
    }
    // data edges keep their direction
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (a, b, kind) in &deps {
        if *kind == DependencyKind::Data {
            let (ga, gb) = (group_rank[scc_of[*a]], group_rank[scc_of[*b]]);
            if ga != gb {
                edges.insert((ga, gb));
            }
        }
    }
    // also include the normalized residual edges computed above
    for e in gedges {
        // only add if it does not contradict an existing data edge direction
        if !edges.contains(&(e.1, e.0)) {
            edges.insert(e);
        }
    }

    let mut merged_members = members;
    let mut merged_edges: Vec<(usize, usize)> = edges.into_iter().collect();

    // the per-instruction facts every merge decision and block needs, computed
    // exactly once — the merge loop below used to recompute the whole
    // program's read/write sets and capability classes for every block of
    // every round, which dominated the solve pipeline on large programs
    let class_of: Vec<CapabilityClass> =
        program.instructions.iter().map(|i| classify_instruction(i, &program.objects)).collect();
    let sets = program.read_write_sets();

    // --- step 3: Kahn partitioning + same-type merging -----------------------
    if config.enable_merging {
        while let Some((new_members, new_edges)) =
            merge_round(&class_of, &merged_members, &merged_edges, config)
        {
            merged_members = new_members;
            merged_edges = new_edges;
        }
    }

    // --- materialize blocks ---------------------------------------------------
    let blocks: Vec<Block> = merged_members
        .iter()
        .enumerate()
        .map(|(id, instrs)| make_block(&class_of, &sets, id, instrs.clone()))
        .collect();
    let mut dag = BlockDag::new(blocks, merged_edges);
    // stamp step numbers = topological levels
    let levels = dag.levels();
    let blocks: Vec<Block> = dag
        .blocks()
        .iter()
        .cloned()
        .map(|mut b| {
            b.step = levels[b.id.0];
            b
        })
        .collect();
    dag = BlockDag::new(blocks, dag.edges().to_vec());
    dag
}

fn make_block(
    class_of: &[CapabilityClass],
    sets: &[ReadWriteSet],
    id: usize,
    instrs: Vec<usize>,
) -> Block {
    let classes: BTreeSet<CapabilityClass> = instrs.iter().map(|&i| class_of[i]).collect();
    let stateful = instrs.iter().any(|&i| !sets[i].state_objects.is_empty());
    Block { id: BlockId(id), instrs, classes, step: 0, stateful }
}

/// Longest-path topological levels of the membership graph (leaves at 0), the
/// same levels [`BlockDag::levels`] computes — including its degenerate
/// all-zeros answer when the graph has a cycle.
fn levels_of(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let Some(order) = topo_order(n, edges) else { return vec![0; n] };
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        preds[b].push(a);
    }
    let mut level = vec![0usize; n];
    for &b in &order {
        for &p in &preds[b] {
            level[b] = level[b].max(level[p] + 1);
        }
    }
    level
}

/// Kahn topological order over a raw edge list; `None` on a cycle.
fn topo_order(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut deg = vec![0usize; n];
    for &(a, b) in edges {
        succ[a].push(b);
        deg[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&b| deg[b] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(b) = queue.pop() {
        order.push(b);
        for &s in &succ[b] {
            deg[s] -= 1;
            if deg[s] == 0 {
                queue.push(s);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// A merge round's output: the new per-block membership and block edges.
type MergedLayout = (Vec<Vec<usize>>, Vec<(usize, usize)>);

/// One round of merging: try to merge same-type blocks within a Kahn layer and
/// across adjacent layers, without exceeding the size budget or creating a
/// cycle.  Returns the new membership and edges, or `None` once no candidate
/// merge is possible.
fn merge_round(
    class_of: &[CapabilityClass],
    members: &[Vec<usize>],
    edges: &[(usize, usize)],
    config: &BlockConfig,
) -> Option<MergedLayout> {
    let n = members.len();
    if n <= 1 {
        return None;
    }
    let levels = levels_of(n, edges);
    let block_classes: Vec<BTreeSet<CapabilityClass>> =
        members.iter().map(|instrs| instrs.iter().map(|&i| class_of[i]).collect()).collect();

    // candidate pairs: same layer first, then adjacent layers
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let same_layer = levels[a] == levels[b];
            let adjacent = levels[a].abs_diff(levels[b]) == 1;
            if !(same_layer || adjacent) {
                continue;
            }
            if members[a].len() + members[b].len() > config.max_block_instrs {
                continue;
            }
            if !classes_compatible(&block_classes[a], &block_classes[b]) {
                continue;
            }
            candidates.push((a, b));
        }
    }
    // prefer same-layer merges, then smaller combined size
    candidates
        .sort_by_key(|&(a, b)| (levels[a] != levels[b], members[a].len() + members[b].len(), a, b));

    for (a, b) in candidates {
        // try the merge and keep it if the DAG stays acyclic
        let (new_members, new_edges) = apply_merge(members, edges, a, b);
        if topo_order(new_members.len(), &new_edges).is_some() {
            return Some((new_members, new_edges));
        }
    }
    None
}

/// Two class sets are "non-exclusive" (mergeable) when one is a subset of the
/// other — merging never widens the set of devices that must support the block.
fn classes_compatible(a: &BTreeSet<CapabilityClass>, b: &BTreeSet<CapabilityClass>) -> bool {
    a.is_subset(b) || b.is_subset(a)
}

fn apply_merge(
    members: &[Vec<usize>],
    edges: &[(usize, usize)],
    a: usize,
    b: usize,
) -> (Vec<Vec<usize>>, Vec<(usize, usize)>) {
    let (keep, gone) = if a < b { (a, b) } else { (b, a) };
    let mut new_members: Vec<Vec<usize>> = Vec::with_capacity(members.len() - 1);
    let mut remap = vec![0usize; members.len()];
    for (idx, m) in members.iter().enumerate() {
        if idx == gone {
            remap[idx] = keep.min(new_members.len().saturating_sub(0));
            continue;
        }
        remap[idx] = new_members.len();
        new_members.push(m.clone());
    }
    // the removed block maps to wherever `keep` landed
    remap[gone] = remap[keep];
    let mut merged = members[keep].clone();
    merged.extend(members[gone].iter().copied());
    merged.sort_unstable();
    new_members[remap[keep]] = merged;
    let mut new_edges: Vec<(usize, usize)> =
        edges.iter().map(|&(x, y)| (remap[x], remap[y])).filter(|(x, y)| x != y).collect();
    new_edges.sort_unstable();
    new_edges.dedup();
    (new_members, new_edges)
}

/// Iterative Tarjan strongly-connected-components; returns the SCC index of
/// every node.
fn tarjan_scc(n: usize, succ: &[Vec<usize>]) -> Vec<usize> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: i64,
        lowlink: i64,
        on_stack: bool,
    }
    let mut state = vec![NodeState { index: -1, lowlink: -1, on_stack: false }; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![usize::MAX; n];
    let mut next_index: i64 = 0;
    let mut next_scc = 0usize;

    // explicit DFS stack: (node, child iterator position)
    for start in 0..n {
        if state[start].index != -1 {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start].index = next_index;
        state[start].lowlink = next_index;
        next_index += 1;
        stack.push(start);
        state[start].on_stack = true;

        while let Some(&mut (node, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos < succ[node].len() {
                let child = succ[node][*child_pos];
                *child_pos += 1;
                if state[child].index == -1 {
                    state[child].index = next_index;
                    state[child].lowlink = next_index;
                    next_index += 1;
                    stack.push(child);
                    state[child].on_stack = true;
                    call_stack.push((child, 0));
                } else if state[child].on_stack {
                    state[node].lowlink = state[node].lowlink.min(state[child].index);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    state[parent].lowlink = state[parent].lowlink.min(state[node].lowlink);
                }
                if state[node].lowlink == state[node].index {
                    loop {
                        let w = stack.pop().expect("stack non-empty while closing SCC");
                        state[w].on_stack = false;
                        scc_of[w] = next_scc;
                        if w == node {
                            break;
                        }
                    }
                    next_scc += 1;
                }
            }
        }
    }
    scc_of
}

#[cfg(test)]
mod tests {
    use super::*;
    use clickinc_ir::{AluOp, Operand, ProgramBuilder};

    /// The MLAgg-like pattern: hash -> read -> add -> write, all on one array.
    fn aggregator_program() -> IrProgram {
        let mut b = ProgramBuilder::new("agg");
        b.array("agg", 1, 64, 32);
        b.hash_fn("h", clickinc_ir::HashAlgo::Crc16, Some(64));
        b.hash("idx", "h", vec![Operand::hdr("seq")]);
        b.get("cur", "agg", vec![Operand::var("idx")]);
        b.alu("sum", AluOp::Add, Operand::var("cur"), Operand::hdr("data"));
        b.write("agg", vec![Operand::var("idx")], vec![Operand::var("sum")]);
        b.forward();
        b.build().expect("test program is well-formed")
    }

    #[test]
    fn state_sharing_instructions_collapse_into_one_block() {
        let program = aggregator_program();
        let dag = build_block_dag(&program, &BlockConfig::default());
        // get (1) and write (3) touch the same array and must share a block
        let block_of = |instr: usize| {
            dag.blocks().iter().position(|b| b.instrs.contains(&instr)).expect("covered")
        };
        assert_eq!(block_of(1), block_of(3));
        assert!(dag.blocks()[block_of(1)].stateful);
        assert!(dag.topological_order().is_some());
        assert!(dag.is_partition_legal());
    }

    #[test]
    fn independent_instructions_can_merge_when_compatible() {
        let mut b = ProgramBuilder::new("p");
        for i in 0..6 {
            b.alu(&format!("v{i}"), AluOp::Add, Operand::hdr("x"), Operand::int(i));
        }
        b.build().expect("test program is well-formed");
        let mut b = ProgramBuilder::new("p");
        for i in 0..6 {
            b.alu(&format!("v{i}"), AluOp::Add, Operand::hdr("x"), Operand::int(i));
        }
        let program = b.build().expect("test program is well-formed");
        let dag = build_block_dag(&program, &BlockConfig::default());
        assert!(
            dag.len() < program.len(),
            "independent BIN instructions should merge: {} blocks for {} instrs",
            dag.len(),
            program.len()
        );
        assert_eq!(dag.total_instructions(), program.len());
    }

    #[test]
    fn block_size_budget_is_respected() {
        let mut b = ProgramBuilder::new("p");
        for i in 0..20 {
            b.alu(&format!("v{i}"), AluOp::Add, Operand::hdr("x"), Operand::int(i));
        }
        let program = b.build().expect("test program is well-formed");
        let cfg = BlockConfig { max_block_instrs: 4, ..Default::default() };
        let dag = build_block_dag(&program, &cfg);
        assert!(dag.blocks().iter().all(|blk| blk.len() <= 4));
        assert_eq!(dag.total_instructions(), 20);
    }

    #[test]
    fn disabling_merging_keeps_fine_granularity() {
        let program = aggregator_program();
        let merged = build_block_dag(&program, &BlockConfig::default());
        let unmerged =
            build_block_dag(&program, &BlockConfig { enable_merging: false, ..Default::default() });
        assert!(unmerged.len() >= merged.len());
        assert_eq!(unmerged.total_instructions(), program.len());
    }

    #[test]
    fn chain_dependencies_produce_increasing_steps() {
        let mut b = ProgramBuilder::new("chain");
        b.alu("a", AluOp::Add, Operand::hdr("x"), Operand::int(1));
        b.alu("bv", AluOp::Mul, Operand::var("a"), Operand::int(2));
        b.alu("c", AluOp::Add, Operand::var("bv"), Operand::int(3));
        let program = b.build().expect("test program is well-formed");
        let cfg = BlockConfig { max_block_instrs: 1, ..Default::default() };
        let dag = build_block_dag(&program, &cfg);
        assert_eq!(dag.len(), 3);
        let steps: Vec<usize> =
            dag.blocks_by_step().iter().map(|&i| dag.blocks()[i].step).collect();
        assert_eq!(steps, vec![0, 1, 2]);
    }

    #[test]
    fn empty_program_yields_empty_dag() {
        let program = IrProgram::new("empty");
        let dag = build_block_dag(&program, &BlockConfig::default());
        assert!(dag.is_empty());
    }

    #[test]
    fn kvs_like_program_from_frontend_builds_legal_dag() {
        let t = clickinc_lang::templates::kvs_template(
            "kvs",
            clickinc_lang::templates::KvsParams::default(),
        );
        let ir = clickinc_frontend::compile_source("kvs", &t.source).unwrap();
        let dag = build_block_dag(&ir, &BlockConfig::default());
        assert_eq!(dag.total_instructions(), ir.len());
        assert!(dag.topological_order().is_some());
        assert!(dag.is_partition_legal());
        assert!(dag.len() < ir.len(), "blocks compact the program");
    }

    #[test]
    fn tarjan_finds_cycles() {
        // 0 -> 1 -> 2 -> 0 is one SCC; 3 alone
        let succ = vec![vec![1], vec![2], vec![0], vec![]];
        let scc = tarjan_scc(4, &succ);
        assert_eq!(scc[0], scc[1]);
        assert_eq!(scc[1], scc[2]);
        assert_ne!(scc[0], scc[3]);
    }

    #[test]
    fn class_compatibility_is_subset_based() {
        use CapabilityClass::*;
        let a: BTreeSet<_> = [Bin].into_iter().collect();
        let b: BTreeSet<_> = [Bin, Baf].into_iter().collect();
        let c: BTreeSet<_> = [Bso].into_iter().collect();
        assert!(classes_compatible(&a, &b));
        assert!(classes_compatible(&b, &a));
        assert!(!classes_compatible(&b, &c));
    }
}
