//! Tenant routing material shared between the control plane and the engine.
//!
//! A tenant's deployment, from the engine's point of view, is nothing more
//! than an ordered list of programmable hops: which device, which model (for
//! latency accounting on the shard's plane replicas), and which isolated IR
//! snippets to install there.  The controller (`clickinc`) produces these
//! from a placement plan; hand-built hop lists (as the benches and the
//! engine-invariance tests do) work just as well.

use clickinc_device::DeviceModel;
use clickinc_ir::IrProgram;

/// One programmable hop of a tenant's deployment: the physical device, its
/// model (for latency accounting on replicas of the plane), and the isolated
/// IR snippets installed there.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantHop {
    /// Topology node name of the device.
    pub device: String,
    /// The device model.
    pub model: DeviceModel,
    /// The snippets installed on this device for the tenant, in install order.
    pub snippets: Vec<IrProgram>,
}
